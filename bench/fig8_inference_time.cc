// Reproduces paper Figure 8: mean end-to-end inference time per method per
// stay-point-count bucket.
//
// Absolute numbers differ from the paper (CPU autograd vs. V100 + Python),
// so the reproduction target is the ordering: LEAD fastest (shared
// phase-1 "once forward computation" and 32-hidden operators), then
// SP-GRU/SP-LSTM (128-hidden classifiers over every stay point), with
// SP-R slowest per classified stay point relative to its trivial compute
// (full white-list traversal). Training here uses a reduced schedule:
// inference cost does not depend on fit quality.
#include <cstdint>
#include <cstdio>

#include "bench/bench_util.h"
#include "nn/matrix.h"

using namespace lead;

int main() {
  const double scale = eval::BenchScaleFromEnv();
  eval::ExperimentConfig config = eval::DefaultConfig(scale);
  // Reduced training: this bench measures inference wall-clock only.
  config.lead.train.autoencoder_epochs = 2;
  config.lead.train.detector_epochs = 4;
  bench::PrintHeader("Figure 8 - mean inference time per bucket", scale,
                     config);

  auto data_or = eval::BuildExperiment(config);
  if (!data_or.ok()) {
    std::fprintf(stderr, "experiment build failed: %s\n",
                 data_or.status().ToString().c_str());
    return 1;
  }
  const eval::ExperimentData data = std::move(data_or).value();

  std::vector<eval::MethodResult> results;

  baselines::SpRuleBaseline sp_r(config.lead.pipeline, {});
  if (const Status s = sp_r.Train(data.TrainLabeled()); !s.ok()) {
    std::fprintf(stderr, "SP-R training failed: %s\n", s.ToString().c_str());
    return 1;
  }
  results.push_back(eval::EvaluateMethod("SP-R", data.split.test,
                                         bench::SpRuleDetectFn(sp_r)));

  std::vector<std::unique_ptr<baselines::SpRnnBaseline>> rnns;
  for (const auto cell :
       {baselines::RnnCellType::kGru, baselines::RnnCellType::kLstm}) {
    baselines::SpRnnOptions options;
    options.cell = cell;
    options.train = config.lead.train;
    options.train.detector_epochs = 2;
    rnns.push_back(std::make_unique<baselines::SpRnnBaseline>(
        config.lead.pipeline, options));
    if (const Status s =
            rnns.back()->Train(data.TrainLabeled(), data.ValLabeled(),
                               data.world->poi_index(), nullptr, nullptr);
        !s.ok()) {
      std::fprintf(stderr, "training failed: %s\n", s.ToString().c_str());
      return 1;
    }
    results.push_back(
        eval::EvaluateMethod(baselines::RnnCellTypeName(cell),
                             data.split.test,
                             bench::SpRnnDetectFn(*rnns.back(), data)));
  }

  core::TrainingLog log;
  const auto lead_model = bench::TrainLead(config.lead, data, &log);
  results.push_back(eval::EvaluateMethod("LEAD", data.split.test,
                                         bench::LeadDetectFn(*lead_model,
                                                             data)));

  std::printf("\nMeasured mean inference seconds per trajectory:\n%s",
              eval::FormatTimingTable(results).c_str());
  std::printf(
      "\nPaper Figure 8 (V100 + Python, seconds): LEAD ~12-25s, SP-GRU and\n"
      "SP-LSTM ~14-33s, SP-R ~33-86s; LEAD fastest in every bucket and the\n"
      "gap widens with more stay points. Compare orderings, not absolutes.\n");

  // Thread sweep for the parallel Detect path: the same trained weights
  // reloaded with detect.threads in {1, 2, 4, 8}, end-to-end wall-clock
  // over the full test split, speedup relative to the serial run.
  // Outputs are bit-identical across thread counts (parallel_parity_test
  // proves this), so only the wall-clock varies. Records append to
  // BENCH_parallel.json as JSON lines.
  const std::string snapshot = "fig8_lead_model_snapshot.bin";
  if (const Status s = lead_model->Save(snapshot); !s.ok()) {
    std::fprintf(stderr, "model snapshot failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("\nParallel Detect sweep (same weights, --threads varied):\n");
  double serial_seconds = 0.0;
  for (const int threads : {1, 2, 4, 8}) {
    core::LeadOptions options = config.lead;
    options.detect.threads = threads;
    core::LeadModel model(options);
    if (const Status s = model.Load(snapshot); !s.ok()) {
      std::fprintf(stderr, "model reload failed: %s\n", s.ToString().c_str());
      return 1;
    }
    int detected = 0;
    const obs::Stopwatch watch;
    for (const sim::SimulatedDay& day : data.split.test) {
      auto detection = model.Detect(day.raw, data.world->poi_index());
      if (detection.ok()) ++detected;
    }
    const double seconds = watch.ElapsedSeconds();
    if (threads == 1) serial_seconds = seconds;
    const double speedup = seconds > 0.0 ? serial_seconds / seconds : 0.0;
    std::printf("  threads=%d  %6.2fs over %d trajectories  speedup x%.2f\n",
                threads, seconds, detected, speedup);
    char record[256];
    std::snprintf(record, sizeof(record),
                  "{\"bench\": \"fig8_detect\", \"threads\": %d, "
                  "\"seconds\": %.4f, \"trajectories\": %d, "
                  "\"speedup_vs_serial\": %.3f, \"scale\": %.2f}",
                  threads, seconds, detected, speedup, scale);
    bench::AppendJsonLine("BENCH_parallel.json", record);
  }
  // Eager vs. compiled-plan inference on one thread: the same weights,
  // preprocessing hoisted out of the timed loop so only the network
  // forward is measured. Plan mode replays cached arena-backed schedules
  // after one warm-up detect per shape signature, so its steady state
  // performs no tensor allocations; the eager tape allocates one tensor
  // per node. Records append to BENCH_plan.json.
  std::printf("\nExec-mode sweep (threads=1, preprocessing hoisted):\n");
  {
    core::LeadOptions options = config.lead;
    options.detect.threads = 1;
    options.detect.exec_mode = core::ExecMode::kEager;
    core::LeadModel eager(options);
    options.detect.exec_mode = core::ExecMode::kPlan;
    core::LeadModel plan(options);
    if (!eager.Load(snapshot).ok() || !plan.Load(snapshot).ok()) {
      std::fprintf(stderr, "model reload failed\n");
      return 1;
    }
    std::vector<core::ProcessedTrajectory> pts;
    for (const sim::SimulatedDay& day : data.split.test) {
      auto pt = eager.Preprocess(day.raw, data.world->poi_index());
      if (pt.ok()) pts.push_back(std::move(pt).value());
    }
    // Warm-up records every shape signature's plans outside the timing.
    for (const auto& pt : pts) {
      if (const auto d = plan.DetectProcessed(pt); !d.ok()) {
        std::fprintf(stderr, "warm-up detect failed: %s\n",
                     d.status().ToString().c_str());
        return 1;
      }
    }

    constexpr int kIters = 5;
    const int64_t detects = static_cast<int64_t>(kIters) *
                            static_cast<int64_t>(pts.size());
    struct ModeRun {
      double seconds;  // best single pass over the test split
      int64_t allocs_per_detect;
      int64_t ok;
    };
    // Best-of-kIters per mode: on a shared core the minimum pass time is
    // the least-interference estimate, so the eager/plan ratio is not
    // skewed by whichever mode happened to share its slice with noise.
    auto run = [&](core::LeadModel& model) -> ModeRun {
      int64_t ok = 0;
      double best = 0.0;
      const int64_t allocs_before = nn::TensorAllocsThisThread();
      for (int it = 0; it < kIters; ++it) {
        const obs::Stopwatch watch;
        for (const auto& pt : pts) {
          if (model.DetectProcessed(pt).ok()) ++ok;
        }
        const double pass = watch.ElapsedSeconds();
        if (it == 0 || pass < best) best = pass;
      }
      const int64_t allocs = nn::TensorAllocsThisThread() - allocs_before;
      return {best, detects > 0 ? allocs / detects : 0, ok};
    };
    const ModeRun eager_run = run(eager);
    const ModeRun plan_run = run(plan);
    if (eager_run.ok != detects || plan_run.ok != detects) {
      std::fprintf(stderr, "exec-mode sweep: detect failures (eager %lld, "
                   "plan %lld of %lld)\n",
                   static_cast<long long>(eager_run.ok),
                   static_cast<long long>(plan_run.ok),
                   static_cast<long long>(detects));
      return 1;
    }
    const double speedup =
        plan_run.seconds > 0.0 ? eager_run.seconds / plan_run.seconds : 0.0;
    std::printf(
        "  eager  %6.3fs best pass  %lld tensor allocs/detect\n"
        "  plan   %6.3fs best pass  %lld tensor allocs/detect  "
        "speedup x%.2f\n",
        eager_run.seconds,
        static_cast<long long>(eager_run.allocs_per_detect), plan_run.seconds,
        static_cast<long long>(plan_run.allocs_per_detect), speedup);
    char record[384];
    std::snprintf(
        record, sizeof(record),
        "{\"bench\": \"fig8_exec_mode\", \"iters\": %d, "
        "\"trajectories\": %d, \"eager_seconds\": %.4f, "
        "\"plan_seconds\": %.4f, \"speedup_plan_vs_eager\": %.3f, "
        "\"eager_allocs_per_detect\": %lld, "
        "\"plan_allocs_per_detect\": %lld, \"scale\": %.2f}",
        kIters, static_cast<int>(pts.size()), eager_run.seconds,
        plan_run.seconds, speedup,
        static_cast<long long>(eager_run.allocs_per_detect),
        static_cast<long long>(plan_run.allocs_per_detect), scale);
    bench::AppendJsonLine("BENCH_plan.json", record);
  }
  std::remove(snapshot.c_str());
  return 0;
}
