// Reproduces paper Figure 8: mean end-to-end inference time per method per
// stay-point-count bucket.
//
// Absolute numbers differ from the paper (CPU autograd vs. V100 + Python),
// so the reproduction target is the ordering: LEAD fastest (shared
// phase-1 "once forward computation" and 32-hidden operators), then
// SP-GRU/SP-LSTM (128-hidden classifiers over every stay point), with
// SP-R slowest per classified stay point relative to its trivial compute
// (full white-list traversal). Training here uses a reduced schedule:
// inference cost does not depend on fit quality.
#include <cstdio>

#include "bench/bench_util.h"

using namespace lead;

int main() {
  const double scale = eval::BenchScaleFromEnv();
  eval::ExperimentConfig config = eval::DefaultConfig(scale);
  // Reduced training: this bench measures inference wall-clock only.
  config.lead.train.autoencoder_epochs = 2;
  config.lead.train.detector_epochs = 4;
  bench::PrintHeader("Figure 8 - mean inference time per bucket", scale,
                     config);

  auto data_or = eval::BuildExperiment(config);
  if (!data_or.ok()) {
    std::fprintf(stderr, "experiment build failed: %s\n",
                 data_or.status().ToString().c_str());
    return 1;
  }
  const eval::ExperimentData data = std::move(data_or).value();

  std::vector<eval::MethodResult> results;

  baselines::SpRuleBaseline sp_r(config.lead.pipeline, {});
  if (const Status s = sp_r.Train(data.TrainLabeled()); !s.ok()) {
    std::fprintf(stderr, "SP-R training failed: %s\n", s.ToString().c_str());
    return 1;
  }
  results.push_back(eval::EvaluateMethod("SP-R", data.split.test,
                                         bench::SpRuleDetectFn(sp_r)));

  std::vector<std::unique_ptr<baselines::SpRnnBaseline>> rnns;
  for (const auto cell :
       {baselines::RnnCellType::kGru, baselines::RnnCellType::kLstm}) {
    baselines::SpRnnOptions options;
    options.cell = cell;
    options.train = config.lead.train;
    options.train.detector_epochs = 2;
    rnns.push_back(std::make_unique<baselines::SpRnnBaseline>(
        config.lead.pipeline, options));
    if (const Status s =
            rnns.back()->Train(data.TrainLabeled(), data.ValLabeled(),
                               data.world->poi_index(), nullptr, nullptr);
        !s.ok()) {
      std::fprintf(stderr, "training failed: %s\n", s.ToString().c_str());
      return 1;
    }
    results.push_back(
        eval::EvaluateMethod(baselines::RnnCellTypeName(cell),
                             data.split.test,
                             bench::SpRnnDetectFn(*rnns.back(), data)));
  }

  core::TrainingLog log;
  const auto lead_model = bench::TrainLead(config.lead, data, &log);
  results.push_back(eval::EvaluateMethod("LEAD", data.split.test,
                                         bench::LeadDetectFn(*lead_model,
                                                             data)));

  std::printf("\nMeasured mean inference seconds per trajectory:\n%s",
              eval::FormatTimingTable(results).c_str());
  std::printf(
      "\nPaper Figure 8 (V100 + Python, seconds): LEAD ~12-25s, SP-GRU and\n"
      "SP-LSTM ~14-33s, SP-R ~33-86s; LEAD fastest in every bucket and the\n"
      "gap widens with more stay points. Compare orderings, not absolutes.\n");

  // Thread sweep for the parallel Detect path: the same trained weights
  // reloaded with detect.threads in {1, 2, 4, 8}, end-to-end wall-clock
  // over the full test split, speedup relative to the serial run.
  // Outputs are bit-identical across thread counts (parallel_parity_test
  // proves this), so only the wall-clock varies. Records append to
  // BENCH_parallel.json as JSON lines.
  const std::string snapshot = "fig8_lead_model_snapshot.bin";
  if (const Status s = lead_model->Save(snapshot); !s.ok()) {
    std::fprintf(stderr, "model snapshot failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("\nParallel Detect sweep (same weights, --threads varied):\n");
  double serial_seconds = 0.0;
  for (const int threads : {1, 2, 4, 8}) {
    core::LeadOptions options = config.lead;
    options.detect.threads = threads;
    core::LeadModel model(options);
    if (const Status s = model.Load(snapshot); !s.ok()) {
      std::fprintf(stderr, "model reload failed: %s\n", s.ToString().c_str());
      return 1;
    }
    int detected = 0;
    const obs::Stopwatch watch;
    for (const sim::SimulatedDay& day : data.split.test) {
      auto detection = model.Detect(day.raw, data.world->poi_index());
      if (detection.ok()) ++detected;
    }
    const double seconds = watch.ElapsedSeconds();
    if (threads == 1) serial_seconds = seconds;
    const double speedup = seconds > 0.0 ? serial_seconds / seconds : 0.0;
    std::printf("  threads=%d  %6.2fs over %d trajectories  speedup x%.2f\n",
                threads, seconds, detected, speedup);
    char record[256];
    std::snprintf(record, sizeof(record),
                  "{\"bench\": \"fig8_detect\", \"threads\": %d, "
                  "\"seconds\": %.4f, \"trajectories\": %d, "
                  "\"speedup_vs_serial\": %.3f, \"scale\": %.2f}",
                  threads, seconds, detected, speedup, scale);
    bench::AppendJsonLine("BENCH_parallel.json", record);
  }
  std::remove(snapshot.c_str());
  return 0;
}
