// Quickstart: the smallest end-to-end tour of the LEAD public API.
//
//  1. Generate a synthetic Nantong-like world and a labeled HCT corpus
//     (stands in for the paper's confidential GPS data).
//  2. Train the LEAD model (hierarchical autoencoder + forward/backward
//     detectors) on the training split.
//  3. Detect the loaded trajectory of an unseen raw trajectory and print
//     the merged candidate distribution.
//
// Runs in roughly a minute on one CPU core.
#include <cstdio>

#include "core/lead.h"
#include "eval/harness.h"

using namespace lead;

int main() {
  // 1. A small world and corpus.
  std::printf("generating synthetic HCT corpus...\n");
  eval::ExperimentConfig config = eval::DefaultConfig(1.0);
  config.world.num_background_pois = 4000;
  config.dataset.num_trajectories = 90;
  config.dataset.num_trucks = 45;
  config.sim.sample_interval_mean_s = 240.0;
  config.lead.train.autoencoder_epochs = 6;
  config.lead.train.detector_epochs = 25;
  auto data_or = eval::BuildExperiment(config);
  if (!data_or.ok()) {
    std::fprintf(stderr, "corpus generation failed: %s\n",
                 data_or.status().ToString().c_str());
    return 1;
  }
  const eval::ExperimentData data = std::move(data_or).value();
  std::printf("corpus: %zu train / %zu val / %zu test trajectories, %d POIs\n",
              data.split.train.size(), data.split.val.size(),
              data.split.test.size(), data.world->poi_index().size());

  // 2. Offline stage: train LEAD.
  std::printf("training LEAD (autoencoder + detectors)...\n");
  core::LeadModel model(config.lead);
  core::TrainingLog log;
  const Status trained = model.Train(data.TrainLabeled(), data.ValLabeled(),
                                     data.world->poi_index(), &log);
  if (!trained.ok()) {
    std::fprintf(stderr, "training failed: %s\n", trained.ToString().c_str());
    return 1;
  }
  std::printf("autoencoder MSE %.3f -> %.3f over %zu epochs\n",
              log.autoencoder_mse.front(), log.autoencoder_mse.back(),
              log.autoencoder_mse.size());

  // 3. Online stage: detect on an unseen trajectory.
  const sim::SimulatedDay& day = data.split.test.front();
  auto detection = model.Detect(day.raw, data.world->poi_index());
  if (!detection.ok()) {
    std::fprintf(stderr, "detection failed: %s\n",
                 detection.status().ToString().c_str());
    return 1;
  }
  std::printf("\ntrajectory %s: %d GPS points, %d stay points, %zu candidates\n",
              day.raw.trajectory_id.c_str(), day.raw.size(),
              detection->num_stays, detection->candidates.size());
  std::printf("detected loaded trajectory: stay %d -> stay %d\n",
              detection->loaded.start_sp, detection->loaded.end_sp);
  std::printf("ground truth:               stay %d -> stay %d  (%s)\n",
              day.loaded_label.start_sp, day.loaded_label.end_sp,
              detection->loaded == day.loaded_label ? "HIT" : "MISS");
  std::printf("\nmerged candidate probabilities (rescaled to [0,1]):\n");
  for (size_t i = 0; i < detection->candidates.size(); ++i) {
    const traj::Candidate& c = detection->candidates[i];
    std::printf("  <sp%-2d --> sp%-2d>  %.3f%s\n", c.start_sp, c.end_sp,
                detection->probabilities[i],
                c == detection->loaded ? "   <- detected" : "");
  }

  // Bonus: overall accuracy on the held-out test split.
  int hits = 0;
  for (const sim::SimulatedDay& test_day : data.split.test) {
    auto d = model.Detect(test_day.raw, data.world->poi_index());
    if (d.ok() && d->loaded == test_day.loaded_label) ++hits;
  }
  std::printf("\ntest-split accuracy: %d/%zu\n", hits,
              data.split.test.size());
  return 0;
}
