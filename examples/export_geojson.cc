// GeoJSON export: visualize a detection (paper Figure 1's three phases).
//
// Trains a small LEAD model, detects the loaded trajectory of a few test
// days and writes one GeoJSON file per day into ./geojson_out/ — drop a
// file into geojson.io to see the empty phases (blue), the detected
// loaded trajectory (red), and the loading/unloading stay points.
#include <cstdio>
#include <filesystem>

#include "core/lead.h"
#include "eval/harness.h"
#include "io/geojson.h"
#include "traj/simplify.h"

using namespace lead;

int main() {
  std::printf("building corpus and training LEAD...\n");
  eval::ExperimentConfig config = eval::DefaultConfig(1.0);
  config.dataset.num_trajectories = 90;
  config.dataset.num_trucks = 45;
  config.sim.sample_interval_mean_s = 240.0;
  config.lead.train.autoencoder_epochs = 6;
  config.lead.train.detector_epochs = 25;
  auto data_or = eval::BuildExperiment(config);
  if (!data_or.ok()) {
    std::fprintf(stderr, "%s\n", data_or.status().ToString().c_str());
    return 1;
  }
  const eval::ExperimentData data = std::move(data_or).value();
  core::LeadModel model(config.lead);
  if (const Status s = model.Train(data.TrainLabeled(), data.ValLabeled(),
                                   data.world->poi_index(), nullptr);
      !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  const std::string out_dir = "geojson_out";
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);

  int written = 0;
  for (const sim::SimulatedDay& day : data.split.test) {
    if (written >= 5) break;
    auto pt = model.Preprocess(day.raw, data.world->poi_index());
    if (!pt.ok()) continue;
    auto detection = model.DetectProcessed(*pt);
    if (!detection.ok()) continue;

    io::GeoJsonWriter writer;
    io::AddDetection(pt->cleaned, pt->segmentation, detection->loaded,
                     &writer);
    // Context: POIs within 1 km of the loading stay point.
    const geo::LatLng load_pos =
        pt->segmentation.stays[detection->loaded.start_sp].centroid;
    std::vector<poi::Poi> nearby;
    for (int i : data.world->poi_index().QueryWithin(load_pos, 1000.0)) {
      nearby.push_back(data.world->poi_index().pois()[i]);
    }
    io::AddPois(nearby, &writer);

    const std::string path =
        out_dir + "/" + day.raw.trajectory_id + ".geojson";
    if (const Status s = writer.WriteToFile(path); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    const traj::TrackStats stats = traj::ComputeStats(
        pt->cleaned.points,
        traj::CandidateRange(pt->segmentation, detection->loaded));
    std::printf(
        "%-24s -> %s  (%d features; loaded leg %.1f km, %.0f min, "
        "mean %.0f km/h, %s)\n",
        day.raw.trajectory_id.c_str(), path.c_str(),
        writer.feature_count(), stats.path_length_m / 1000.0,
        static_cast<double>(stats.duration_s) / 60.0, stats.mean_speed_kmh,
        detection->loaded == day.loaded_label ? "HIT" : "MISS");
    ++written;
  }
  std::printf("\nwrote %d GeoJSON files to %s/\n", written, out_dir.c_str());
  return 0;
}
