// Waybill audit: the paper's motivating application (§I).
//
// Drivers file waybills manually after the trip; the collected records
// suffer preset default times (8:00/17:00) and coarse or mistyped
// addresses. This example auto-generates waybills from LEAD detections
// (the origin/destination stay points of the detected loaded trajectory)
// and audits the driver-filled ones against them, flagging records whose
// reported time or location deviates beyond tolerance.
#include <cstdio>
#include <cstdlib>

#include "core/lead.h"
#include "eval/harness.h"

using namespace lead;

namespace {

struct AutoWaybill {
  int64_t load_t = 0;
  int64_t unload_t = 0;
  geo::LatLng load_pos;
  geo::LatLng unload_pos;
};

// Derives a waybill from the detected loaded trajectory: the arrival time
// and centroid of its loading/unloading stay points.
AutoWaybill GenerateWaybill(const core::ProcessedTrajectory& pt,
                            const traj::Candidate& loaded) {
  const traj::StayPoint& load = pt.segmentation.stays[loaded.start_sp];
  const traj::StayPoint& unload = pt.segmentation.stays[loaded.end_sp];
  return AutoWaybill{load.arrival_t, unload.arrival_t, load.centroid,
                     unload.centroid};
}

const char* Hhmm(int64_t t, char* buffer) {
  const int64_t seconds_of_day = t % 86400;
  std::snprintf(buffer, 8, "%02d:%02d",
                static_cast<int>(seconds_of_day / 3600),
                static_cast<int>((seconds_of_day / 60) % 60));
  return buffer;
}

}  // namespace

int main() {
  std::printf("building corpus and training LEAD...\n");
  eval::ExperimentConfig config = eval::DefaultConfig(1.0);
  config.dataset.num_trajectories = 120;
  config.dataset.num_trucks = 60;
  config.sim.sample_interval_mean_s = 240.0;
  config.lead.train.autoencoder_epochs = 8;
  config.lead.train.detector_epochs = 30;
  auto data_or = eval::BuildExperiment(config);
  if (!data_or.ok()) {
    std::fprintf(stderr, "%s\n", data_or.status().ToString().c_str());
    return 1;
  }
  const eval::ExperimentData data = std::move(data_or).value();
  core::LeadModel model(config.lead);
  if (const Status s = model.Train(data.TrainLabeled(), data.ValLabeled(),
                                   data.world->poi_index(), nullptr);
      !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  // Audit thresholds: a waybill is suspicious when its reported times or
  // locations disagree with the detection-derived waybill.
  constexpr int64_t kTimeToleranceS = 2 * 3600;
  constexpr double kLocationToleranceM = 1500.0;

  int audited = 0;
  int flagged = 0;
  int truly_bad = 0;
  int flagged_and_bad = 0;
  char hm1[8], hm2[8];
  std::printf("\n%-22s %-13s %-13s %s\n", "trajectory",
              "driver(load)", "auto(load)", "verdict");
  for (const sim::SimulatedDay& day : data.split.test) {
    auto pt = model.Preprocess(day.raw, data.world->poi_index());
    if (!pt.ok()) continue;
    auto detection = model.DetectProcessed(*pt);
    if (!detection.ok()) continue;
    const AutoWaybill generated = GenerateWaybill(*pt, detection->loaded);
    const sim::Waybill& filed = day.waybill;

    const bool time_off =
        std::llabs(filed.reported_load_t - generated.load_t) >
            kTimeToleranceS ||
        std::llabs(filed.reported_unload_t - generated.unload_t) >
            kTimeToleranceS;
    const bool location_off =
        geo::DistanceMeters(filed.reported_load_pos, generated.load_pos) >
            kLocationToleranceM ||
        geo::DistanceMeters(filed.reported_unload_pos,
                            generated.unload_pos) > kLocationToleranceM;
    const bool flag = time_off || location_off;
    const bool bad = filed.used_default_times ||
                     filed.load_address_coarse_or_wrong ||
                     filed.unload_address_coarse_or_wrong;
    ++audited;
    flagged += flag ? 1 : 0;
    truly_bad += bad ? 1 : 0;
    flagged_and_bad += (flag && bad) ? 1 : 0;
    std::printf("%-22s %-13s %-13s %s%s\n", day.raw.trajectory_id.c_str(),
                Hhmm(filed.reported_load_t, hm1),
                Hhmm(generated.load_t, hm2),
                flag ? "FLAGGED" : "ok",
                flag ? (bad ? " (corrupt record)" : " (false alarm)") : "");
  }

  std::printf("\naudited %d waybills: %d flagged, %d actually corrupted, "
              "%d correctly caught\n",
              audited, flagged, truly_bad, flagged_and_bad);
  if (truly_bad > 0) {
    std::printf("audit recall %.0f%%, precision %.0f%%\n",
                100.0 * flagged_and_bad / truly_bad,
                flagged > 0 ? 100.0 * flagged_and_bad / flagged : 0.0);
  }
  std::printf(
      "\nauto-generated waybills replace the manual filing entirely: the\n"
      "detected loading/unloading stay points provide reliable times and\n"
      "coordinates (paper §I, 'high-quality waybill can be automatically\n"
      "generated from the loaded trajectory').\n");
  return 0;
}
