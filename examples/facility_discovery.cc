// Facility discovery: mining loading/unloading locations from detected
// loaded trajectories (paper §I, motivation (1); in the spirit of the
// ICFinder system the paper cites [4]).
//
// The endpoints of detected loaded trajectories are clustered with
// DBSCAN (geo::Dbscan); clusters that match no registered facility are
// reported as potential illegal loading/unloading sites.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/lead.h"
#include "eval/harness.h"
#include "geo/dbscan.h"

using namespace lead;

namespace {

struct Cluster {
  geo::LatLng center;
  int count = 0;
};

// DBSCAN over the endpoint cloud; clusters sorted by support.
std::vector<Cluster> ClusterEndpoints(const std::vector<geo::LatLng>& points,
                                      double radius_m) {
  const geo::DbscanResult result =
      geo::Dbscan(points, {.epsilon_m = radius_m, .min_points = 2});
  std::vector<Cluster> clusters;
  clusters.reserve(result.num_clusters);
  for (int c = 0; c < result.num_clusters; ++c) {
    clusters.push_back(Cluster{result.centroids[c], result.sizes[c]});
  }
  std::sort(clusters.begin(), clusters.end(),
            [](const Cluster& a, const Cluster& b) {
              return a.count > b.count;
            });
  return clusters;
}

}  // namespace

int main() {
  std::printf("building corpus and training LEAD...\n");
  eval::ExperimentConfig config = eval::DefaultConfig(1.0);
  config.dataset.num_trajectories = 150;
  config.dataset.num_trucks = 75;
  config.sim.sample_interval_mean_s = 240.0;
  config.lead.train.autoencoder_epochs = 8;
  config.lead.train.detector_epochs = 30;
  auto data_or = eval::BuildExperiment(config);
  if (!data_or.ok()) {
    std::fprintf(stderr, "%s\n", data_or.status().ToString().c_str());
    return 1;
  }
  const eval::ExperimentData data = std::move(data_or).value();
  core::LeadModel model(config.lead);
  if (const Status s = model.Train(data.TrainLabeled(), data.ValLabeled(),
                                   data.world->poi_index(), nullptr);
      !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  // Collect detected endpoints over every split (in production this would
  // run over the full unlabeled archive).
  std::vector<geo::LatLng> loading_points;
  std::vector<geo::LatLng> unloading_points;
  auto collect = [&](const std::vector<sim::SimulatedDay>& days) {
    for (const sim::SimulatedDay& day : days) {
      auto pt = model.Preprocess(day.raw, data.world->poi_index());
      if (!pt.ok()) continue;
      auto detection = model.DetectProcessed(*pt);
      if (!detection.ok()) continue;
      loading_points.push_back(
          pt->segmentation.stays[detection->loaded.start_sp].centroid);
      unloading_points.push_back(
          pt->segmentation.stays[detection->loaded.end_sp].centroid);
    }
  };
  collect(data.split.val);
  collect(data.split.test);
  std::printf("collected %zu loading / %zu unloading endpoints\n",
              loading_points.size(), unloading_points.size());

  // A "registry" of officially known facilities: pretend 70% of the
  // world's facilities are registered.
  std::vector<geo::LatLng> registry;
  for (size_t i = 0; i < data.world->loading_facilities().size(); ++i) {
    if (i % 10 < 7) registry.push_back(data.world->loading_facilities()[i].pos);
  }
  for (size_t i = 0; i < data.world->unloading_facilities().size(); ++i) {
    if (i % 10 < 7) {
      registry.push_back(data.world->unloading_facilities()[i].pos);
    }
  }

  constexpr double kClusterRadiusM = 700.0;
  constexpr int kMinSupport = 2;
  for (const auto& [label, points] :
       {std::pair{"loading", &loading_points},
        std::pair{"unloading", &unloading_points}}) {
    const std::vector<Cluster> clusters =
        ClusterEndpoints(*points, kClusterRadiusM);
    std::printf("\n%s sites (clusters with >= %d detections):\n", label,
                kMinSupport);
    int unregistered = 0;
    for (const Cluster& c : clusters) {
      if (c.count < kMinSupport) continue;
      bool registered = false;
      for (const geo::LatLng& r : registry) {
        if (geo::DistanceMeters(c.center, r) <= kClusterRadiusM) {
          registered = true;
          break;
        }
      }
      unregistered += registered ? 0 : 1;
      std::printf("  (%.5f, %.5f)  %3d detections  %s\n", c.center.lat,
                  c.center.lng, c.count,
                  registered ? "registered"
                             : "** UNREGISTERED - investigate **");
    }
    std::printf("  -> %d unregistered %s site(s) surfaced\n", unregistered,
                label);
  }
  std::printf(
      "\ngovernments can promptly identify illegal loading and unloading\n"
      "locations from the origins/destinations of detected loaded\n"
      "trajectories (paper §I).\n");
  return 0;
}
