// Compliance monitoring: regulation checks on detected loaded trajectories
// (paper §I, motivation (2)).
//
// Loaded HCT trucks are prohibited from moving on roads between 2:00 and
// 5:00 am and from entering main urban areas. Only the *loaded* part of
// the day is regulated — a truck may drive empty through the city at
// night — so the checks run on the subtrajectory LEAD detects.
#include <cstdio>

#include "core/lead.h"
#include "eval/harness.h"

using namespace lead;

namespace {

// Night curfew for loaded trucks: [2:00, 5:00) local time.
bool InCurfew(int64_t t) {
  const int64_t seconds_of_day = t % 86400;
  return seconds_of_day >= 2 * 3600 && seconds_of_day < 5 * 3600;
}

struct Violations {
  int curfew_points = 0;  // loaded GPS points inside the curfew window
  int urban_points = 0;   // loaded GPS points inside an urban core
};

Violations Check(const core::ProcessedTrajectory& pt,
                 const traj::Candidate& loaded,
                 const std::vector<geo::LatLng>& urban_centers,
                 double urban_radius_m) {
  Violations v;
  const traj::IndexRange range =
      traj::CandidateRange(pt.segmentation, loaded);
  for (int i = range.begin; i <= range.end; ++i) {
    const traj::GpsPoint& p = pt.cleaned.points[i];
    if (InCurfew(p.t)) ++v.curfew_points;
    for (const geo::LatLng& center : urban_centers) {
      if (geo::DistanceMeters(p.pos, center) <= urban_radius_m) {
        ++v.urban_points;
        break;
      }
    }
  }
  return v;
}

}  // namespace

int main() {
  std::printf("building corpus and training LEAD...\n");
  eval::ExperimentConfig config = eval::DefaultConfig(1.0);
  config.dataset.num_trajectories = 120;
  config.dataset.num_trucks = 60;
  config.sim.sample_interval_mean_s = 240.0;
  config.lead.train.autoencoder_epochs = 8;
  config.lead.train.detector_epochs = 30;
  // Loosen the simulator's urban avoidance a little so some violations
  // actually occur.
  config.sim.urban_avoid_radius_m = 2500.0;
  auto data_or = eval::BuildExperiment(config);
  if (!data_or.ok()) {
    std::fprintf(stderr, "%s\n", data_or.status().ToString().c_str());
    return 1;
  }
  const eval::ExperimentData data = std::move(data_or).value();
  core::LeadModel model(config.lead);
  if (const Status s = model.Train(data.TrainLabeled(), data.ValLabeled(),
                                   data.world->poi_index(), nullptr);
      !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  constexpr double kUrbanRadiusM = 3000.0;
  int monitored = 0;
  int urban_violations = 0;
  int curfew_violations = 0;
  std::printf("\n%-22s %7s %8s %7s  %s\n", "trajectory", "#loaded",
              "curfew", "urban", "verdict");
  for (const sim::SimulatedDay& day : data.split.test) {
    auto pt = model.Preprocess(day.raw, data.world->poi_index());
    if (!pt.ok()) continue;
    auto detection = model.DetectProcessed(*pt);
    if (!detection.ok()) continue;
    const Violations v = Check(*pt, detection->loaded,
                               data.world->urban_centers(), kUrbanRadiusM);
    ++monitored;
    curfew_violations += v.curfew_points > 0 ? 1 : 0;
    urban_violations += v.urban_points > 0 ? 1 : 0;
    const traj::IndexRange range =
        traj::CandidateRange(pt->segmentation, detection->loaded);
    std::printf("%-22s %7d %8d %7d  %s\n", day.raw.trajectory_id.c_str(),
                range.size(), v.curfew_points, v.urban_points,
                (v.curfew_points > 0 || v.urban_points > 0)
                    ? "VIOLATION -> dispatch inspection"
                    : "compliant");
  }

  std::printf(
      "\nmonitored %d HCT processes: %d urban-area violations, %d night\n"
      "curfew violations among loaded subtrajectories.\n",
      monitored, urban_violations, curfew_violations);
  std::printf(
      "note: the same checks on full raw trajectories would flag empty\n"
      "trucks too; restricting them to the detected loaded trajectory is\n"
      "exactly why loaded-trajectory detection matters (paper §I).\n");
  return 0;
}
