// Chaos harness: deadline/cancellation honor under injected stalls,
// graceful degradation (partial batch results, budget sheds), thread-pool
// shutdown/cancellation behavior, and — the flip side — bit-parity with
// the golden Detect fixture when the robustness substrate is active but
// nothing fires.
//
// Fault-driven tests GTEST_SKIP unless the build has
// -DLEAD_FAULT_INJECTION=ON (ci.sh's fault stage). The ChaosEnv test is
// env-tolerant by design: ci.sh re-runs it under each LEAD_FAULT=<point>
// to exercise runtime activation end-to-end, and its assertions hold
// whether or not (and wherever) the armed point fires.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/budget.h"
#include "common/cancel.h"
#include "common/fault.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/lead.h"
#include "eval/harness.h"
#include "io/csv.h"
#include "obs/dump.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace lead {
namespace {

#ifndef LEAD_GOLDEN_DIR
#error "build must define LEAD_GOLDEN_DIR"
#endif

int64_t ElapsedMillis(uint64_t start_us) {
  return static_cast<int64_t>((obs::NowMicros() - start_us) / 1000);
}

// ---------------------------------------------------------------------------
// Batch detection under stalls, deadlines, and budgets.
// ---------------------------------------------------------------------------

// One small simulated corpus and one trained baseline model, built once:
// every test here exercises the online stage, not training.
class ChaosDetectTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    config_ =
        std::make_unique<eval::ExperimentConfig>(eval::DefaultConfig(1.0));
    config_->world.num_background_pois = 300;
    // 10% of trucks land in the test split; 4 days per truck gives the
    // batch tests at least 4 test trajectories.
    config_->dataset.num_trajectories = 40;
    config_->dataset.num_trucks = 10;
    config_->sim.sample_interval_mean_s = 240.0;
    config_->lead.train.autoencoder_epochs = 0;
    config_->lead.train.detector_epochs = 0;
    auto data = eval::BuildExperiment(*config_);
    ASSERT_TRUE(data.ok()) << data.status();
    data_ = std::make_unique<eval::ExperimentData>(std::move(*data));
    model_ = TrainedModel(0);

    // Per-trajectory CSV blobs: the provider re-reads them through the
    // real reader so io.read.stall sits on the batch's critical path.
    csv_ = std::make_unique<std::vector<std::string>>();
    ASSERT_GE(data_->split.test.size(), 3u);
    for (const sim::SimulatedDay& day : data_->split.test) {
      std::ostringstream out;
      ASSERT_TRUE(io::WriteTrajectories({day.raw}, out).ok());
      csv_->push_back(out.str());
    }
  }

  static void TearDownTestSuite() {
    model_.reset();
    csv_.reset();
    data_.reset();
    config_.reset();
  }

  // A freshly trained model with the given Detect deadline (cheap: zero
  // training epochs, the normalizer fit dominates).
  static std::unique_ptr<core::LeadModel> TrainedModel(int64_t deadline_ms) {
    core::LeadOptions options = config_->lead;
    options.detect.deadline_ms = deadline_ms;
    auto model = std::make_unique<core::LeadModel>(options);
    const Status trained =
        model->Train(data_->TrainLabeled(), data_->ValLabeled(),
                     data_->world->poi_index(), nullptr);
    EXPECT_TRUE(trained.ok()) << trained;
    return model;
  }

  static core::TrajectoryProvider CsvProvider() {
    return [](int index) -> StatusOr<traj::RawTrajectory> {
      std::istringstream in((*csv_)[static_cast<size_t>(index)]);
      auto rows = io::ReadTrajectories(in);
      if (!rows.ok()) return rows.status();
      if (rows->empty()) return InternalError("empty csv blob");
      return std::move((*rows)[0]);
    };
  }

  static int Count() { return static_cast<int>(csv_->size()); }

  static std::unique_ptr<eval::ExperimentConfig> config_;
  static std::unique_ptr<eval::ExperimentData> data_;
  static std::unique_ptr<core::LeadModel> model_;
  static std::unique_ptr<std::vector<std::string>> csv_;
};

std::unique_ptr<eval::ExperimentConfig> ChaosDetectTest::config_;
std::unique_ptr<eval::ExperimentData> ChaosDetectTest::data_;
std::unique_ptr<core::LeadModel> ChaosDetectTest::model_;
std::unique_ptr<std::vector<std::string>> ChaosDetectTest::csv_;

// Acceptance: with io.read.stall injected and deadline_ms = 200, the
// batch returns kDeadlineExceeded-tagged partial results within 2x the
// deadline instead of hanging for the 10 s stall.
TEST_F(ChaosDetectTest, StalledReadHonorsDeadlineWithinTwoX) {
  if (!fault::Enabled()) GTEST_SKIP() << "fault injection compiled out";
  const auto model = TrainedModel(200);
  fault::ArmStall("io.read.stall", 1, 10'000);
  const uint64_t t0 = obs::NowMicros();
  const auto batch =
      model->DetectStream(Count(), CsvProvider(), data_->world->poi_index());
  const int64_t elapsed_ms = ElapsedMillis(t0);
  const int fires = fault::Fires("io.read.stall");
  fault::DisarmAll();

  ASSERT_TRUE(batch.ok()) << batch.status();
  EXPECT_LT(elapsed_ms, 400) << "stall outlived 2x the 200 ms deadline";
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(batch->completed, 0);
  EXPECT_EQ(batch->shed, Count());
  EXPECT_EQ(batch->cause, CancelCause::kDeadline);
  for (const core::DetectionOutcome& outcome : batch->outcomes) {
    EXPECT_TRUE(outcome.degraded);
    EXPECT_EQ(outcome.status.code(), StatusCode::kDeadlineExceeded)
        << outcome.status;
  }
}

// Graceful degradation: a stall that hits only the third trajectory's
// read leaves the first two fully scored; just the remainder sheds.
TEST_F(ChaosDetectTest, MidBatchStallKeepsCompletedItems) {
  if (!fault::Enabled()) GTEST_SKIP() << "fault injection compiled out";
  const auto model = TrainedModel(500);
  // The reader hits io.read.stall once per line (header + points), so
  // this lands the stall on item 2's first line.
  const size_t lines_0 = 1 + data_->split.test[0].raw.points.size();
  const size_t lines_1 = 1 + data_->split.test[1].raw.points.size();
  fault::ArmStall("io.read.stall", static_cast<int>(lines_0 + lines_1 + 1),
                  10'000);
  const uint64_t t0 = obs::NowMicros();
  const auto batch =
      model->DetectStream(Count(), CsvProvider(), data_->world->poi_index());
  const int64_t elapsed_ms = ElapsedMillis(t0);
  fault::DisarmAll();

  ASSERT_TRUE(batch.ok()) << batch.status();
  EXPECT_LT(elapsed_ms, 1000);
  EXPECT_EQ(batch->completed, 2);
  EXPECT_EQ(batch->shed, Count() - 2);
  EXPECT_EQ(batch->cause, CancelCause::kDeadline);
  EXPECT_TRUE(batch->outcomes[0].status.ok()) << batch->outcomes[0].status;
  EXPECT_TRUE(batch->outcomes[1].status.ok()) << batch->outcomes[1].status;
  for (int i = 2; i < Count(); ++i) {
    EXPECT_TRUE(batch->outcomes[static_cast<size_t>(i)].degraded);
    EXPECT_EQ(batch->outcomes[static_cast<size_t>(i)].status.code(),
              StatusCode::kDeadlineExceeded);
  }
}

// Without partial_results the same cancellation fails the whole call
// with the typed status instead of returning a degraded batch.
TEST_F(ChaosDetectTest, AllOrNothingModeReturnsTypedError) {
  core::LeadOptions options = config_->lead;
  options.detect.partial_results = false;
  core::LeadModel model(options);
  ASSERT_TRUE(model
                  .Train(data_->TrainLabeled(), data_->ValLabeled(),
                         data_->world->poi_index(), nullptr)
                  .ok());
  CancelToken token = CancelToken::Cancellable();
  token.Cancel(CancelCause::kUser);
  ScopedCancel scoped(token);
  const auto batch =
      model.DetectStream(Count(), CsvProvider(), data_->world->poi_index());
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(batch.status().code(), StatusCode::kCancelled) << batch.status();
}

// A tiny memory budget sheds every item with kResourceExhausted but the
// batch call itself still succeeds — admission control degrades work,
// it never turns into an OOM or an all-or-nothing failure.
TEST_F(ChaosDetectTest, TinyMemoryBudgetShedsItemsNotTheBatch) {
  MemoryBudget::Global().SetCapBytes(64);
  const auto batch =
      model_->DetectStream(Count(), CsvProvider(), data_->world->poi_index());
  MemoryBudget::Global().SetCapBytes(0);

  ASSERT_TRUE(batch.ok()) << batch.status();
  EXPECT_EQ(batch->completed, 0);
  EXPECT_EQ(batch->shed, Count());
  EXPECT_EQ(batch->cause, CancelCause::kBudget);
  for (const core::DetectionOutcome& outcome : batch->outcomes) {
    EXPECT_TRUE(outcome.degraded);
    EXPECT_EQ(outcome.status.code(), StatusCode::kResourceExhausted)
        << outcome.status;
  }
  // The cap only gates new admissions; with it lifted the same batch
  // completes in full.
  const auto retry =
      model_->DetectStream(Count(), CsvProvider(), data_->world->poi_index());
  ASSERT_TRUE(retry.ok()) << retry.status();
  EXPECT_EQ(retry->completed, Count());
  EXPECT_EQ(retry->shed, 0);
}

// ci.sh re-runs this test under LEAD_FAULT=<point> for every chaos
// point. Whatever fires (or doesn't), the batch call must return a
// coherent, bounded result: no hang, no crash, every item accounted for.
TEST_F(ChaosDetectTest, EnvArmedFaultsDegradeGracefullyWithinBounds) {
  // With a fault armed, the deadline is what bounds a persistent stall;
  // without one, run deadline-free so the full-completion assertion holds
  // even under sanitizer slowdowns.
  const bool env_armed = std::getenv("LEAD_FAULT") != nullptr;
  const auto model = TrainedModel(env_armed ? 400 : 0);
  const uint64_t t0 = obs::NowMicros();
  const auto batch =
      model->DetectStream(Count(), CsvProvider(), data_->world->poi_index());
  const int64_t elapsed_ms = ElapsedMillis(t0);

  ASSERT_TRUE(batch.ok()) << batch.status();
  // Generous bound: a persistently armed io.read.stall would otherwise
  // cost minutes (one stall per CSV line); instrumented builds get slack.
  EXPECT_LT(elapsed_ms, 30'000);
  int errored = 0;
  for (const core::DetectionOutcome& outcome : batch->outcomes) {
    if (outcome.status.ok()) continue;
    if (outcome.degraded) {
      EXPECT_TRUE(IsCancellation(outcome.status)) << outcome.status;
    } else {
      ++errored;
    }
  }
  EXPECT_EQ(batch->completed + batch->shed + errored, Count());
  if (!env_armed) {
    EXPECT_EQ(batch->completed, Count());
    EXPECT_EQ(batch->shed, 0);
    EXPECT_EQ(batch->cause, CancelCause::kNone);
  }
}

// ---------------------------------------------------------------------------
// Bit-parity: the robustness substrate must not perturb results.
// ---------------------------------------------------------------------------

// Mirrors golden_detect_test's corpus and line format exactly; the only
// knobs that vary are exec mode, thread count, and an (unfired) deadline.
std::vector<std::string> GoldenConfigLines(core::ExecMode mode, int threads,
                                           int64_t deadline_ms) {
  eval::ExperimentConfig config = eval::DefaultConfig(1.0);
  config.world.num_background_pois = 1500;
  config.world.num_loading_facilities = 8;
  config.world.num_unloading_facilities = 12;
  config.world.num_rest_areas = 12;
  config.world.num_depots = 6;
  config.dataset.num_trajectories = 40;
  config.dataset.num_trucks = 20;
  config.sim.sample_interval_mean_s = 240.0;
  config.lead.train.autoencoder_epochs = 0;
  config.lead.train.detector_epochs = 0;
  config.lead.detect.exec_mode = mode;
  config.lead.detect.threads = threads;
  config.lead.detect.deadline_ms = deadline_ms;
  auto data = eval::BuildExperiment(config);
  EXPECT_TRUE(data.ok()) << data.status();

  core::LeadModel model(config.lead);
  const Status trained =
      model.Train(data->TrainLabeled(), data->ValLabeled(),
                  data->world->poi_index(), nullptr);
  EXPECT_TRUE(trained.ok()) << trained;

  std::vector<std::string> lines;
  int used = 0;
  constexpr int kMaxTrajectories = 6;
  for (const sim::SimulatedDay& day : data->split.test) {
    if (used >= kMaxTrajectories) break;
    auto detection = model.Detect(day.raw, data->world->poi_index());
    if (!detection.ok()) continue;
    ++used;
    for (size_t i = 0; i < detection->probabilities.size(); ++i) {
      char buf[128];
      std::snprintf(buf, sizeof(buf), "%s %zu %.9g",
                    day.raw.trajectory_id.c_str(), i,
                    static_cast<double>(detection->probabilities[i]));
      lines.emplace_back(buf);
    }
  }
  EXPECT_GT(used, 0);
  return lines;
}

std::vector<std::string> GoldenFileLines() {
  std::ifstream in(std::string(LEAD_GOLDEN_DIR) + "/detect_probs.txt");
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    lines.push_back(line);
  }
  return lines;
}

// Acceptance: with no (firing) deadline the golden fixture stays
// bit-identical across eager/plan and threads {1, 4} — the poll points,
// watchdog scopes, and budget accounting sit on the hot path but only
// observe, never reorder. A generous armed-but-unfired deadline must be
// equally invisible.
TEST(ChaosParityTest, DetectBitIdenticalAcrossModesThreadsAndArmedDeadline) {
  const std::vector<std::string> expected = GoldenFileLines();
  ASSERT_FALSE(expected.empty()) << "no golden fixture";
  struct Run {
    core::ExecMode mode;
    int threads;
    int64_t deadline_ms;
  };
  const std::vector<Run> runs = {
      {core::ExecMode::kEager, 1, 0},       {core::ExecMode::kEager, 4, 0},
      {core::ExecMode::kPlan, 1, 0},        {core::ExecMode::kPlan, 4, 0},
      {core::ExecMode::kEager, 4, 600'000}, {core::ExecMode::kPlan, 4, 600'000},
  };
  for (const Run& run : runs) {
    SCOPED_TRACE(std::string("mode=") +
                 (run.mode == core::ExecMode::kPlan ? "plan" : "eager") +
                 " threads=" + std::to_string(run.threads) +
                 " deadline_ms=" + std::to_string(run.deadline_ms));
    const std::vector<std::string> actual =
        GoldenConfigLines(run.mode, run.threads, run.deadline_ms);
    EXPECT_EQ(actual, expected);
  }
}

// ---------------------------------------------------------------------------
// Thread pool: shutdown while busy, cancellation across lanes.
// ---------------------------------------------------------------------------

TEST(ChaosPoolTest, ShutdownWhileBusyDrainsQueuedBlocks) {
  auto pool = std::make_unique<ThreadPool>(2);
  std::atomic<int> ran{0};
  // The caller holds a raw pointer: `pool.reset()` below must not race
  // with the unique_ptr object itself, only with the pool's shutdown.
  ThreadPool* raw = pool.get();
  std::thread caller([&ran, raw] {
    raw->ParallelForBlocks(8, 8, [&ran](int64_t, int64_t, int) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      ran.fetch_add(1, std::memory_order_relaxed);
    });
  });
  // Destroy the pool while blocks are still queued: workers must drain
  // the queue (the caller waits on the completion latch) instead of
  // abandoning it, and the destructor must not deadlock.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  pool.reset();
  caller.join();
  EXPECT_EQ(ran.load(), 8);
}

TEST(ChaosPoolTest, PreCancelledTokenSkipsEveryBlock) {
  CancelToken token = CancelToken::Cancellable();
  token.Cancel(CancelCause::kUser);
  ScopedCancel scoped(token);
  std::atomic<int> ran{0};
  ThreadPool::Global().ParallelForBlocks(
      64, 8,
      [&](int64_t, int64_t, int) { ran.fetch_add(1); });
  // Lane 0 runs through the same cancellation gate as queued lanes, so a
  // pre-cancelled caller executes nothing — deterministically.
  EXPECT_EQ(ran.load(), 0);
  EXPECT_EQ(token.cause(), CancelCause::kUser);
}

TEST(ChaosPoolTest, MidRunCancellationStopsLaterBlocksAndNestedLoops) {
  CancelToken token = CancelToken::Cancellable();
  ScopedCancel scoped(token);
  std::atomic<int> executed{0};
  ThreadPool::Global().ParallelForBlocks(
      8, 8, [&](int64_t, int64_t, int) {
        executed.fetch_add(1);
        token.Cancel(CancelCause::kUser);
        // A nested loop on a cancelled token must still return promptly
        // (inline, no deadlock) — its blocks are simply skipped or empty.
        ThreadPool::Global().ParallelFor(4, 4, [](int64_t) {});
      });
  EXPECT_GE(executed.load(), 1);
  EXPECT_LE(executed.load(), 8);
  EXPECT_EQ(token.cause(), CancelCause::kUser);
  const Status status = token.Check("chaos_pool");
  EXPECT_EQ(status.code(), StatusCode::kCancelled) << status;
}

// ---------------------------------------------------------------------------
// Budget, fault framework, and watchdog unit-level behavior.
// ---------------------------------------------------------------------------

TEST(ChaosBudgetTest, AllocFailFaultForcesOneRejection) {
  if (!fault::Enabled()) GTEST_SKIP() << "fault injection compiled out";
  fault::ArmFail("alloc.fail", 1);
  const Status first = MemoryBudget::Global().Admit(16, "chaos_test");
  EXPECT_EQ(first.code(), StatusCode::kResourceExhausted) << first;
  const Status second = MemoryBudget::Global().Admit(16, "chaos_test");
  EXPECT_TRUE(second.ok()) << second;
  MemoryBudget::Global().Release(16);
  fault::DisarmAll();
}

TEST(ChaosFaultTest, PersistentArmingFiresUntilDisarmed) {
  if (!fault::Enabled()) GTEST_SKIP() << "fault injection compiled out";
  fault::ArmFail("chaos.unit.point", 0);  // nth <= 0: every hit fires
  EXPECT_TRUE(fault::internal::FireFail("chaos.unit.point"));
  EXPECT_TRUE(fault::internal::FireFail("chaos.unit.point"));
  EXPECT_TRUE(fault::internal::FireFail("chaos.unit.point"));
  EXPECT_EQ(fault::Fires("chaos.unit.point"), 3);
  fault::Disarm("chaos.unit.point");
  EXPECT_FALSE(LEAD_FAULT_FIRED("chaos.unit.point"));
}

TEST(ChaosWatchdogTest, OverrunningStageBumpsTheCounter) {
  const int64_t before =
      obs::GetCounter("lead.watchdog.overruns").Value();
  SetWatchdogThresholdMillis(20);
  {
    WatchdogScope scope("chaos_test.slow_stage");
    // The scanner idles at a 200 ms cadence while the threshold is 0
    // (earlier tests reset it); outlive one full idle sleep plus the
    // armed cadence so the overrun is observed regardless of where in
    // the idle sleep the new threshold landed.
    std::this_thread::sleep_for(std::chrono::milliseconds(450));
  }
  SetWatchdogThresholdMillis(0);
  EXPECT_GT(obs::GetCounter("lead.watchdog.overruns").Value(), before);
}

// ---------------------------------------------------------------------------
// Anomaly-triggered post-mortem dumps on the real detect path.
// ---------------------------------------------------------------------------

std::set<std::string> DumpFilesIn(const std::string& dir) {
  std::set<std::string> files;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("leaddump-", 0) == 0) files.insert(entry.path().string());
  }
  return files;
}

// Configures a dump directory for one test. When ci.sh passes
// LEAD_DUMP_DIR the environment-configured directory is used as-is (so
// the stage can inspect the file afterwards); otherwise a private temp
// dir is created and cleaned up.
class ScopedDumpDir {
 public:
  ScopedDumpDir() : prior_dir_(obs::DumpDir()) {
    if (std::getenv("LEAD_DUMP_DIR") != nullptr && !prior_dir_.empty()) {
      dir_ = prior_dir_;
    } else {
      dir_ = ::testing::TempDir() + "/chaos_dumps";
      std::filesystem::create_directories(dir_);
      owns_dir_ = true;
      obs::SetDumpDir(dir_);
    }
    obs::SetAnomalyDumpIntervalMicros(0);  // every trigger fires
    was_recording_ = obs::Recorder::Global().enabled();
    obs::Recorder::Global().SetEnabled(true);
    before_ = DumpFilesIn(dir_);
  }
  ~ScopedDumpDir() {
    obs::Recorder::Global().SetEnabled(was_recording_);
    obs::SetAnomalyDumpIntervalMicros(5'000'000);
    obs::SetDumpDir(prior_dir_);
    if (owns_dir_) std::filesystem::remove_all(dir_);
  }

  const std::string& dir() const { return dir_; }

  // Dump files that appeared since construction.
  std::vector<std::string> NewDumps() const {
    std::vector<std::string> fresh;
    for (const std::string& f : DumpFilesIn(dir_)) {
      if (before_.count(f) == 0) fresh.push_back(f);
    }
    return fresh;
  }

 private:
  std::string prior_dir_;
  std::string dir_;
  bool owns_dir_ = false;
  bool was_recording_ = false;
  std::set<std::string> before_;
};

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// Acceptance: a deadline-expired detect run emits one self-contained
// post-mortem dump whose trigger cause is the sticky first cause
// (deadline), and the dump renders through the report formatter.
TEST_F(ChaosDetectTest, DeadlineExpiredDetectEmitsParseableDump) {
  if (!fault::Enabled()) GTEST_SKIP() << "fault injection compiled out";
  ScopedDumpDir dumps;
  const auto model = TrainedModel(200);
  fault::ArmStall("io.read.stall", 1, 10'000);
  const auto batch =
      model->DetectStream(Count(), CsvProvider(), data_->world->poi_index());
  fault::DisarmAll();
  ASSERT_TRUE(batch.ok()) << batch.status();
  ASSERT_EQ(batch->cause, CancelCause::kDeadline);

  const std::vector<std::string> fresh = dumps.NewDumps();
  ASSERT_EQ(fresh.size(), 1u)
      << "expected exactly one dump (sticky first cause reports once)";
  const std::string json = ReadWholeFile(fresh[0]);
  std::string report;
  std::string error;
  ASSERT_TRUE(obs::FormatDumpReport(json, &report, &error)) << error;
  EXPECT_NE(report.find("cause: deadline"), std::string::npos) << report;
  // The header carries the stage that first observed the expiry.
  EXPECT_NE(json.find("\"cause\":\"deadline\""), std::string::npos);
}

// Acceptance (ci.sh post-mortem stage runs this under LEAD_DUMP_DIR and
// validates the file with `lead_cli obs report`): a stage stalled past
// the watchdog threshold emits a dump with cause "watchdog" while the
// stall is still in progress — no cancellation or crash required.
TEST_F(ChaosDetectTest, StalledStageEmitsPostMortemDump) {
  if (!fault::Enabled()) GTEST_SKIP() << "fault injection compiled out";
  ScopedDumpDir dumps;
  SetWatchdogThresholdMillis(50);
  fault::ArmStall("io.read.stall", 1, 400);
  // No deadline: the watchdog is the only anomaly detector in play.
  const auto batch = model_->DetectStream(Count(), CsvProvider(),
                                          data_->world->poi_index());
  fault::DisarmAll();
  SetWatchdogThresholdMillis(0);
  ASSERT_TRUE(batch.ok()) << batch.status();

  // The scanner thread writes the dump mid-stall; give a slow host a
  // grace window before declaring it missing.
  std::vector<std::string> fresh = dumps.NewDumps();
  for (int waited_ms = 0; fresh.empty() && waited_ms < 2000;
       waited_ms += 50) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    fresh = dumps.NewDumps();
  }
  ASSERT_FALSE(fresh.empty()) << "watchdog overrun produced no dump";
  const std::string json = ReadWholeFile(fresh[0]);
  std::string report;
  std::string error;
  ASSERT_TRUE(obs::FormatDumpReport(json, &report, &error)) << error;
  EXPECT_NE(report.find("cause: watchdog"), std::string::npos) << report;
  // The detail names the stuck stage stack.
  EXPECT_NE(json.find("detect"), std::string::npos);
}

// The flight recorder observes the hot path by default; like the poll
// points and watchdog scopes, it must never perturb results. Same golden
// fixture, recorder forced on and forced off: bit-identical.
TEST(ChaosParityTest, DetectBitIdenticalWithRecorderOnAndOff) {
  const std::vector<std::string> expected = GoldenFileLines();
  ASSERT_FALSE(expected.empty()) << "no golden fixture";
  const bool was_recording = obs::Recorder::Global().enabled();
  obs::Recorder::Global().SetEnabled(true);
  const std::vector<std::string> with_recorder =
      GoldenConfigLines(core::ExecMode::kEager, 4, 0);
  obs::Recorder::Global().SetEnabled(false);
  const std::vector<std::string> without_recorder =
      GoldenConfigLines(core::ExecMode::kEager, 4, 0);
  obs::Recorder::Global().SetEnabled(was_recording);
  EXPECT_EQ(with_recorder, expected);
  EXPECT_EQ(without_recorder, expected);
}

}  // namespace
}  // namespace lead
