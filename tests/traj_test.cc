// Unit and property tests for the trajectory substrate: noise filtering,
// stay-point extraction, segmentation and candidate generation.
#include <gtest/gtest.h>

#include "traj/noise_filter.h"
#include "traj/segmentation.h"
#include "traj/stay_point.h"
#include "traj/trajectory.h"

namespace lead::traj {
namespace {

constexpr geo::LatLng kOrigin{32.0, 120.9};

// Builds a trajectory from (east_m, north_m, t) triples around kOrigin.
RawTrajectory MakeTrajectory(
    const std::vector<std::tuple<double, double, int64_t>>& specs) {
  RawTrajectory trajectory;
  trajectory.trajectory_id = "test";
  trajectory.truck_id = "truck";
  for (const auto& [east, north, t] : specs) {
    trajectory.points.push_back(
        GpsPoint{geo::OffsetMeters(kOrigin, east, north), t});
  }
  return trajectory;
}

TEST(TrajectoryTest, ValidateChronologicalAcceptsIncreasing) {
  const RawTrajectory t = MakeTrajectory({{0, 0, 0}, {10, 0, 60}});
  EXPECT_TRUE(ValidateChronological(t).ok());
}

TEST(TrajectoryTest, ValidateChronologicalRejectsDuplicateTimestamps) {
  const RawTrajectory t = MakeTrajectory({{0, 0, 60}, {10, 0, 60}});
  EXPECT_FALSE(ValidateChronological(t).ok());
}

TEST(TrajectoryTest, SpeedKmh) {
  const RawTrajectory t = MakeTrajectory({{0, 0, 0}, {1000, 0, 3600}});
  // 1 km in 1 hour.
  EXPECT_NEAR(SpeedKmh(t.points[0], t.points[1]), 1.0, 0.01);
}

TEST(TrajectoryTest, SpeedInfiniteForNonPositiveDt) {
  const RawTrajectory t = MakeTrajectory({{0, 0, 100}, {10, 0, 100}});
  EXPECT_TRUE(std::isinf(SpeedKmh(t.points[0], t.points[1])));
}

TEST(TrajectoryTest, CentroidAndDuration) {
  const RawTrajectory t =
      MakeTrajectory({{0, 0, 0}, {100, 0, 60}, {200, 0, 120}});
  const IndexRange all{0, 2};
  EXPECT_EQ(DurationSeconds(t.points, all), 120);
  const geo::LatLng c = Centroid(t.points, all);
  EXPECT_NEAR(geo::ToLocalMeters(kOrigin, c).east_m, 100.0, 1.0);
  EXPECT_NEAR(PathLengthMeters(t.points, all), 200.0, 1.0);
}

TEST(NoiseFilterTest, RemovesSpeedOutlier) {
  // 2-minute sampling; the middle point jumps 10 km (=300 km/h).
  const RawTrajectory t =
      MakeTrajectory({{0, 0, 0}, {10000, 0, 120}, {200, 0, 240}});
  const NoiseFilterResult result = FilterNoise(t);
  EXPECT_EQ(result.cleaned.size(), 2);
  ASSERT_EQ(result.removed_indices.size(), 1u);
  EXPECT_EQ(result.removed_indices[0], 1);
}

TEST(NoiseFilterTest, KeepsNormalDriving) {
  // ~60 km/h hops.
  const RawTrajectory t =
      MakeTrajectory({{0, 0, 0}, {2000, 0, 120}, {4000, 0, 240}});
  const NoiseFilterResult result = FilterNoise(t);
  EXPECT_EQ(result.cleaned.size(), 3);
  EXPECT_TRUE(result.removed_indices.empty());
}

TEST(NoiseFilterTest, ComparesAgainstLastKeptPoint) {
  // Two consecutive outliers: both must go (each compared to the last
  // *kept* point, not its raw precursor).
  const RawTrajectory t = MakeTrajectory(
      {{0, 0, 0}, {10000, 0, 120}, {10200, 0, 240}, {400, 0, 360}});
  const NoiseFilterResult result = FilterNoise(t);
  EXPECT_EQ(result.cleaned.size(), 2);
  EXPECT_EQ(result.removed_indices.size(), 2u);
}

TEST(NoiseFilterTest, PreservesMetadataAndEmptyInput) {
  RawTrajectory t;
  t.trajectory_id = "id";
  t.truck_id = "tr";
  const NoiseFilterResult result = FilterNoise(t);
  EXPECT_EQ(result.cleaned.trajectory_id, "id");
  EXPECT_EQ(result.cleaned.truck_id, "tr");
  EXPECT_TRUE(result.cleaned.empty());
}

// A stay: `count` points within a tight disc, `dt` seconds apart.
void AppendStay(std::vector<std::tuple<double, double, int64_t>>* specs,
                double east, double north, int count, int64_t dt = 240) {
  int64_t t = specs->empty() ? 0 : std::get<2>(specs->back()) + dt;
  for (int i = 0; i < count; ++i) {
    specs->push_back({east + 10.0 * (i % 3), north + 10.0 * (i % 2), t});
    t += dt;
  }
}

// A move: points stepping `step_m` east each `dt` seconds.
void AppendMove(std::vector<std::tuple<double, double, int64_t>>* specs,
                double from_east, double to_east, double north,
                double step_m = 1500.0, int64_t dt = 120) {
  int64_t t = specs->empty() ? 0 : std::get<2>(specs->back()) + dt;
  for (double e = from_east + step_m; e < to_east - step_m / 2;
       e += step_m) {
    specs->push_back({e, north, t});
    t += dt;
  }
}

RawTrajectory TwoStayTrajectory() {
  std::vector<std::tuple<double, double, int64_t>> specs;
  AppendStay(&specs, 0, 0, 6);           // 20 min within 30 m
  AppendMove(&specs, 0, 10000, 0);       // drive 10 km east
  AppendStay(&specs, 10000, 0, 6);       // second stay
  return MakeTrajectory(specs);
}

TEST(StayPointTest, ExtractsTwoStays) {
  const RawTrajectory t = TwoStayTrajectory();
  const std::vector<StayPoint> stays = ExtractStayPoints(t);
  ASSERT_EQ(stays.size(), 2u);
  EXPECT_NEAR(geo::ToLocalMeters(kOrigin, stays[0].centroid).east_m, 10.0,
              30.0);
  EXPECT_NEAR(geo::ToLocalMeters(kOrigin, stays[1].centroid).east_m, 10010.0,
              30.0);
  EXPECT_GE(stays[0].duration_s(), 15 * 60);
}

TEST(StayPointTest, ShortDwellIsNotAStay) {
  std::vector<std::tuple<double, double, int64_t>> specs;
  AppendStay(&specs, 0, 0, 3, /*dt=*/240);  // only 8 min within disc
  AppendMove(&specs, 0, 8000, 0);
  const RawTrajectory t = MakeTrajectory(specs);
  StayPointOptions options;
  options.min_duration_s = 15 * 60;
  EXPECT_TRUE(ExtractStayPoints(t, options).empty());
}

TEST(StayPointTest, WideWanderIsNotAStay) {
  // Points 400 m apart drift out of the 500 m disc around the anchor.
  std::vector<std::tuple<double, double, int64_t>> specs;
  for (int i = 0; i < 10; ++i) {
    specs.push_back({i * 400.0, 0.0, i * 240});
  }
  EXPECT_TRUE(ExtractStayPoints(MakeTrajectory(specs)).empty());
}

TEST(StayPointTest, StaysAreOrderedAndDisjoint) {
  const RawTrajectory t = TwoStayTrajectory();
  const std::vector<StayPoint> stays = ExtractStayPoints(t);
  for (size_t i = 1; i < stays.size(); ++i) {
    EXPECT_GT(stays[i].range.begin, stays[i - 1].range.end);
    EXPECT_GT(stays[i].arrival_t, stays[i - 1].departure_t);
  }
}

TEST(StayPointTest, RespectsDistanceThresholdParameter) {
  const RawTrajectory t = TwoStayTrajectory();
  StayPointOptions generous;
  generous.max_distance_m = 50000.0;  // everything within one disc
  const std::vector<StayPoint> stays = ExtractStayPoints(t, generous);
  ASSERT_EQ(stays.size(), 1u);
  EXPECT_EQ(stays[0].range.begin, 0);
  EXPECT_EQ(stays[0].range.end, t.size() - 1);
}

TEST(SegmentationTest, AlternatesStaysAndMoves) {
  const RawTrajectory t = TwoStayTrajectory();
  Segmentation seg = Segment(t, ExtractStayPoints(t));
  ASSERT_EQ(seg.num_stays(), 2);
  ASSERT_EQ(seg.moves.size(), 3u);
  EXPECT_FALSE(seg.moves[0].has_points);  // trajectory starts in a stay
  EXPECT_TRUE(seg.moves[1].has_points);   // the 10 km drive
  EXPECT_FALSE(seg.moves[2].has_points);  // ends in a stay
  // The interior move exactly covers the gap.
  EXPECT_EQ(seg.moves[1].range.begin, seg.stays[0].range.end + 1);
  EXPECT_EQ(seg.moves[1].range.end, seg.stays[1].range.begin - 1);
}

TEST(SegmentationTest, EmptyMoveBetweenAdjacentStays) {
  // Two stays with zero intermediate points (a single >500 m hop).
  std::vector<std::tuple<double, double, int64_t>> specs;
  AppendStay(&specs, 0, 0, 6);
  AppendStay(&specs, 2000, 0, 6);
  const RawTrajectory t = MakeTrajectory(specs);
  Segmentation seg = Segment(t, ExtractStayPoints(t));
  ASSERT_EQ(seg.num_stays(), 2);
  EXPECT_FALSE(seg.moves[1].has_points);
  EXPECT_EQ(seg.moves[1].size(), 0);
}

TEST(SegmentationTest, CoversEveryPointExactlyOnce) {
  const RawTrajectory t = TwoStayTrajectory();
  Segmentation seg = Segment(t, ExtractStayPoints(t));
  std::vector<int> covered(t.size(), 0);
  for (const StayPoint& sp : seg.stays) {
    for (int i = sp.range.begin; i <= sp.range.end; ++i) covered[i]++;
  }
  for (const MoveSegment& mp : seg.moves) {
    if (!mp.has_points) continue;
    for (int i = mp.range.begin; i <= mp.range.end; ++i) covered[i]++;
  }
  for (int i = 0; i < t.size(); ++i) {
    EXPECT_EQ(covered[i], 1) << "point " << i;
  }
}

class CandidateSweep : public ::testing::TestWithParam<int> {};

TEST_P(CandidateSweep, CountAndOrderInvariants) {
  const int n = GetParam();
  const std::vector<Candidate> candidates = GenerateCandidates(n);
  EXPECT_EQ(static_cast<int>(candidates.size()), NumCandidates(n));
  EXPECT_EQ(NumCandidates(n), n * (n - 1) / 2);
  for (int i = 0; i < static_cast<int>(candidates.size()); ++i) {
    const Candidate& c = candidates[i];
    EXPECT_LT(c.start_sp, c.end_sp);
    EXPECT_LT(c.end_sp, n);
    // Flat index agrees with position.
    EXPECT_EQ(CandidateFlatIndex(n, c), i);
    if (i > 0) {
      const Candidate& prev = candidates[i - 1];
      EXPECT_TRUE(prev.start_sp < c.start_sp ||
                  (prev.start_sp == c.start_sp && prev.end_sp < c.end_sp));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(StayCounts, CandidateSweep,
                         ::testing::Values(2, 3, 5, 8, 14));

TEST(CandidateTest, PaperExampleCounts) {
  // Paper: 5 stay points -> 10 candidates; 14 -> 91; 3 -> 3.
  EXPECT_EQ(NumCandidates(5), 10);
  EXPECT_EQ(NumCandidates(14), 91);
  EXPECT_EQ(NumCandidates(3), 3);
  EXPECT_EQ(NumCandidates(1), 0);
  EXPECT_EQ(NumCandidates(0), 0);
}

TEST(CandidateTest, CandidateRangeSpansStayEndpoints) {
  const RawTrajectory t = TwoStayTrajectory();
  Segmentation seg = Segment(t, ExtractStayPoints(t));
  const IndexRange range = CandidateRange(seg, Candidate{0, 1});
  EXPECT_EQ(range.begin, seg.stays[0].range.begin);
  EXPECT_EQ(range.end, seg.stays[1].range.end);
}

}  // namespace
}  // namespace lead::traj
