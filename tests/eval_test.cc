// Tests for the evaluation harness: config scaling, method evaluation and
// table formatting.
#include <cstdlib>

#include <gtest/gtest.h>

#include "eval/harness.h"

namespace lead::eval {
namespace {

TEST(DefaultConfigTest, ScalesCorpusLinearly) {
  const ExperimentConfig small = DefaultConfig(1.0);
  const ExperimentConfig large = DefaultConfig(2.0);
  EXPECT_EQ(small.dataset.num_trajectories, 360);
  EXPECT_EQ(large.dataset.num_trajectories, 720);
  EXPECT_GT(large.dataset.num_trucks, small.dataset.num_trucks);
  // Paper-faithful 2-minute sampling at scale >= 2.
  EXPECT_DOUBLE_EQ(large.sim.sample_interval_mean_s, 120.0);
  EXPECT_GT(small.sim.sample_interval_mean_s, 120.0);
}

TEST(DefaultConfigTest, FloorsTinyScales) {
  const ExperimentConfig tiny = DefaultConfig(0.01);
  EXPECT_GE(tiny.dataset.num_trajectories, 60);
  EXPECT_GE(tiny.dataset.num_trucks, 30);
}

TEST(BenchScaleTest, ReadsEnvironment) {
  unsetenv("LEAD_BENCH_SCALE");
  EXPECT_DOUBLE_EQ(BenchScaleFromEnv(), 1.0);
  setenv("LEAD_BENCH_SCALE", "2.5", 1);
  EXPECT_DOUBLE_EQ(BenchScaleFromEnv(), 2.5);
  setenv("LEAD_BENCH_SCALE", "garbage", 1);
  EXPECT_DOUBLE_EQ(BenchScaleFromEnv(), 1.0);
  unsetenv("LEAD_BENCH_SCALE");
}

std::vector<sim::SimulatedDay> FakeTestSet() {
  std::vector<sim::SimulatedDay> days(4);
  days[0].num_stay_points = 4;
  days[0].loaded_label = {1, 2};
  days[0].raw.trajectory_id = "a";
  days[1].num_stay_points = 7;
  days[1].loaded_label = {2, 4};
  days[1].raw.trajectory_id = "b";
  days[2].num_stay_points = 10;
  days[2].loaded_label = {3, 6};
  days[2].raw.trajectory_id = "c";
  days[3].num_stay_points = 13;
  days[3].loaded_label = {5, 9};
  days[3].raw.trajectory_id = "d";
  return days;
}

TEST(EvaluateMethodTest, CountsHitsAndErrors) {
  const auto test = FakeTestSet();
  int calls = 0;
  const MethodResult result = EvaluateMethod(
      "fake", test,
      [&](const traj::RawTrajectory& raw) -> StatusOr<traj::Candidate> {
        ++calls;
        if (raw.trajectory_id == "a") return traj::Candidate{1, 2};  // hit
        if (raw.trajectory_id == "b") return traj::Candidate{0, 1};  // miss
        if (raw.trajectory_id == "c") return InternalError("boom");
        return traj::Candidate{5, 9};  // hit
      });
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(result.errors, 1);
  EXPECT_EQ(result.accuracy.overall().total, 4);
  EXPECT_EQ(result.accuracy.overall().hits, 2);
  EXPECT_EQ(result.accuracy.bucket(0).hits, 1);
  EXPECT_EQ(result.accuracy.bucket(1).hits, 0);
  EXPECT_EQ(result.accuracy.bucket(2).hits, 0);  // error counts as miss
  EXPECT_EQ(result.accuracy.bucket(3).hits, 1);
}

TEST(FormatAccuracyTableTest, ContainsMethodsAndBuckets) {
  const auto test = FakeTestSet();
  MethodResult result;
  result.name = "LEAD";
  result.accuracy.Add(4, true);
  result.accuracy.Add(7, false);
  const std::string table = FormatAccuracyTable({result}, test);
  EXPECT_NE(table.find("LEAD"), std::string::npos);
  EXPECT_NE(table.find("3~5"), std::string::npos);
  EXPECT_NE(table.find("12~14"), std::string::npos);
  EXPECT_NE(table.find("3~14"), std::string::npos);
  EXPECT_NE(table.find("100.0"), std::string::npos);  // bucket 0 accuracy
}

TEST(FormatTimingTableTest, FormatsSeconds) {
  MethodResult result;
  result.name = "SP-R";
  result.timing.Add(4, 0.5);
  const std::string table = FormatTimingTable({result});
  EXPECT_NE(table.find("SP-R"), std::string::npos);
  EXPECT_NE(table.find("0.5000"), std::string::npos);
}

TEST(FormatLossCurveTest, ReportsMinimum) {
  const std::string curve = FormatLossCurve("test", {0.5f, 0.2f, 0.3f});
  EXPECT_NE(curve.find("epoch  2"), std::string::npos);
  EXPECT_NE(curve.find("minimized at epoch 2"), std::string::npos);
  EXPECT_NE(curve.find("0.200"), std::string::npos);
  // Empty curve: no crash, no minimum line.
  const std::string empty = FormatLossCurve("empty", {});
  EXPECT_EQ(empty.find("minimized"), std::string::npos);
}

TEST(DetectionBreakdownTest, EndpointAndIouAccounting) {
  DetectionBreakdown b;
  b.Add(1, 4, 1, 4);  // exact: both endpoints right, IoU 1
  b.Add(1, 3, 1, 4);  // loading right, IoU 3/4
  b.Add(0, 4, 1, 4);  // unloading right, IoU 4/5
  b.Add(5, 6, 1, 4);  // disjoint: IoU 0
  EXPECT_EQ(b.total(), 4);
  EXPECT_DOUBLE_EQ(b.loading_accuracy_pct(), 50.0);
  EXPECT_DOUBLE_EQ(b.unloading_accuracy_pct(), 50.0);
  EXPECT_NEAR(b.mean_interval_iou(), (1.0 + 0.75 + 0.8 + 0.0) / 4, 1e-9);
}

TEST(FormatBreakdownTableTest, FormatsDiagnostics) {
  MethodResult result;
  result.name = "LEAD";
  result.breakdown.Add(1, 4, 1, 4);
  result.errors = 2;
  const std::string table = FormatBreakdownTable({result});
  EXPECT_NE(table.find("LEAD"), std::string::npos);
  EXPECT_NE(table.find("100.0"), std::string::npos);
  EXPECT_NE(table.find("1.000"), std::string::npos);
  EXPECT_NE(table.find("2"), std::string::npos);
}

TEST(ToLabeledTest, CarriesRawAndLabel) {
  const auto days = FakeTestSet();
  const auto labeled = ToLabeled(days);
  ASSERT_EQ(labeled.size(), days.size());
  EXPECT_EQ(labeled[2].raw.trajectory_id, "c");
  EXPECT_EQ(labeled[2].loaded, (traj::Candidate{3, 6}));
}

}  // namespace
}  // namespace lead::eval
