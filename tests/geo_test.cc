// Unit tests for the geodesy substrate.
#include <gtest/gtest.h>

#include "geo/latlng.h"

namespace lead::geo {
namespace {

TEST(DistanceTest, ZeroForIdenticalPoints) {
  const LatLng p{32.0, 120.9};
  EXPECT_NEAR(DistanceMeters(p, p), 0.0, 1e-9);
}

TEST(DistanceTest, KnownDistanceOneDegreeLatitude) {
  // One degree of latitude is ~111.2 km.
  const LatLng a{31.5, 120.9};
  const LatLng b{32.5, 120.9};
  EXPECT_NEAR(DistanceMeters(a, b), 111195.0, 200.0);
}

TEST(DistanceTest, LongitudeShrinksWithLatitude) {
  const LatLng eq_a{0.0, 100.0};
  const LatLng eq_b{0.0, 101.0};
  const LatLng mid_a{60.0, 100.0};
  const LatLng mid_b{60.0, 101.0};
  EXPECT_NEAR(DistanceMeters(mid_a, mid_b),
              DistanceMeters(eq_a, eq_b) * 0.5, 500.0);
}

TEST(DistanceTest, Symmetric) {
  const LatLng a{31.9, 120.7};
  const LatLng b{32.1, 121.1};
  EXPECT_NEAR(DistanceMeters(a, b), DistanceMeters(b, a), 1e-6);
}

TEST(OffsetTest, RoundTripsWithToLocalMeters) {
  const LatLng origin{32.0, 120.9};
  const LatLng moved = OffsetMeters(origin, 1234.0, -567.0);
  const EastNorth local = ToLocalMeters(origin, moved);
  EXPECT_NEAR(local.east_m, 1234.0, 1.5);
  EXPECT_NEAR(local.north_m, -567.0, 1.5);
}

TEST(OffsetTest, DistanceMatchesOffsetMagnitude) {
  const LatLng origin{32.0, 120.9};
  const LatLng moved = OffsetMeters(origin, 300.0, 400.0);
  EXPECT_NEAR(DistanceMeters(origin, moved), 500.0, 2.0);
}

TEST(InterpolateTest, EndpointsAndMidpoint) {
  const LatLng a{31.0, 120.0};
  const LatLng b{33.0, 122.0};
  EXPECT_EQ(Interpolate(a, b, 0.0), a);
  EXPECT_EQ(Interpolate(a, b, 1.0), b);
  const LatLng mid = Interpolate(a, b, 0.5);
  EXPECT_NEAR(mid.lat, 32.0, 1e-9);
  EXPECT_NEAR(mid.lng, 121.0, 1e-9);
}

TEST(BearingTest, CardinalDirections) {
  const LatLng origin{32.0, 120.9};
  EXPECT_NEAR(InitialBearingRad(origin, OffsetMeters(origin, 0, 1000)), 0.0,
              1e-3);  // north
  EXPECT_NEAR(InitialBearingRad(origin, OffsetMeters(origin, 1000, 0)),
              M_PI / 2, 1e-3);  // east
}

TEST(BoundingBoxTest, ContainsAndExpand) {
  const BoundingBox box{{31.9, 120.8}, {32.1, 121.0}};
  EXPECT_TRUE(box.Contains({32.0, 120.9}));
  EXPECT_FALSE(box.Contains({32.2, 120.9}));
  EXPECT_FALSE(box.Contains({32.0, 121.1}));
  const BoundingBox bigger = Expand(box, 5000.0);
  EXPECT_TRUE(bigger.Contains({32.14, 121.04}));
  EXPECT_GT(box.width_deg(), 0.0);
  EXPECT_GT(box.height_deg(), 0.0);
}

}  // namespace
}  // namespace lead::geo
