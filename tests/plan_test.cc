// Compiled execution plans (nn/plan.h): bit-parity against the eager
// tape, arena reuse, and cache behavior.
//
// The parity tests mirror the golden-detect harness: a fixed simulated
// corpus and a fixed-seed model (0 epochs) make every probability a pure
// deterministic function of the code, and %.9g strings make float
// comparison bit-exact. A plan-mode model must reproduce the eager
// model's Detect output exactly — across trajectories (many shapes),
// after mutating feature values under a cached plan, and for every
// thread count.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/lead.h"
#include "eval/harness.h"
#include "nn/matrix.h"
#include "nn/ops.h"
#include "nn/plan.h"
#include "nn/variable.h"
#include "obs/metrics.h"

namespace lead {
namespace {

// Small corpus: enough trajectories for several distinct stay-count
// shapes, cheap enough to build per test case.
eval::ExperimentConfig MakeConfig(core::ExecMode mode, int threads) {
  eval::ExperimentConfig config = eval::DefaultConfig(1.0);
  config.world.num_background_pois = 800;
  config.world.num_loading_facilities = 6;
  config.world.num_unloading_facilities = 8;
  config.world.num_rest_areas = 8;
  config.world.num_depots = 4;
  config.dataset.num_trajectories = 24;
  config.dataset.num_trucks = 12;
  config.sim.sample_interval_mean_s = 240.0;
  config.lead.train.autoencoder_epochs = 0;
  config.lead.train.detector_epochs = 0;
  config.lead.detect.exec_mode = mode;
  config.lead.detect.threads = threads;
  config.lead.train.threads = threads;
  return config;
}

// Identical seeds and 0 training epochs give every model built from the
// same config bit-identical weights, so an eager and a plan model are
// directly comparable.
std::unique_ptr<core::LeadModel> MakeTrainedModel(
    const eval::ExperimentConfig& config, const eval::ExperimentData& data) {
  auto model = std::make_unique<core::LeadModel>(config.lead);
  const Status trained =
      model->Train(data.TrainLabeled(), data.ValLabeled(),
                   data.world->poi_index(), nullptr);
  EXPECT_TRUE(trained.ok()) << trained;
  return model;
}

std::string ProbLine(const std::string& id, size_t i, float p) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%s %zu %.9g", id.c_str(), i,
                static_cast<double>(p));
  return buf;
}

// Detect probabilities of every test trajectory as %.9g strings (string
// equality == bit equality).
std::vector<std::string> DetectLines(const core::LeadModel& model,
                                     const eval::ExperimentData& data) {
  std::vector<std::string> lines;
  for (const sim::SimulatedDay& day : data.split.test) {
    auto detection = model.Detect(day.raw, data.world->poi_index());
    if (!detection.ok()) continue;
    for (size_t i = 0; i < detection->probabilities.size(); ++i) {
      lines.push_back(ProbLine(day.raw.trajectory_id, i,
                               detection->probabilities[i]));
    }
  }
  EXPECT_FALSE(lines.empty());
  return lines;
}

TEST(PlanParityTest, DetectMatchesEagerBitExactAcrossShapes) {
  const eval::ExperimentConfig eager_cfg =
      MakeConfig(core::ExecMode::kEager, 1);
  const eval::ExperimentConfig plan_cfg = MakeConfig(core::ExecMode::kPlan, 1);
  auto data = eval::BuildExperiment(eager_cfg);
  ASSERT_TRUE(data.ok()) << data.status();

  const auto eager_model = MakeTrainedModel(eager_cfg, *data);
  const auto plan_model = MakeTrainedModel(plan_cfg, *data);
  EXPECT_EQ(DetectLines(*eager_model, *data), DetectLines(*plan_model, *data));
}

TEST(PlanParityTest, CachedPlanTracksMutatedFeatureValues) {
  const eval::ExperimentConfig eager_cfg =
      MakeConfig(core::ExecMode::kEager, 1);
  const eval::ExperimentConfig plan_cfg = MakeConfig(core::ExecMode::kPlan, 1);
  auto data = eval::BuildExperiment(eager_cfg);
  ASSERT_TRUE(data.ok()) << data.status();
  const auto eager_model = MakeTrainedModel(eager_cfg, *data);
  const auto plan_model = MakeTrainedModel(plan_cfg, *data);

  auto pt = plan_model->Preprocess(data->split.test.front().raw,
                                   data->world->poi_index());
  ASSERT_TRUE(pt.ok()) << pt.status();

  // First plan-mode detect records the plans for this shape signature.
  ASSERT_TRUE(plan_model->DetectProcessed(*pt).ok());

  // Same shapes, different values: the cached plan must replay against
  // the mutated features and still match eager bit-for-bit.
  for (int r = 0; r < pt->features.rows(); ++r) {
    for (int c = 0; c < pt->features.cols(); c += 3) {
      pt->features.at(r, c) += 0.125f * static_cast<float>((r + c) % 5);
    }
  }
  auto eager_det = eager_model->DetectProcessed(*pt);
  auto plan_det = plan_model->DetectProcessed(*pt);
  ASSERT_TRUE(eager_det.ok()) << eager_det.status();
  ASSERT_TRUE(plan_det.ok()) << plan_det.status();
  ASSERT_EQ(eager_det->probabilities.size(), plan_det->probabilities.size());
  for (size_t i = 0; i < eager_det->probabilities.size(); ++i) {
    EXPECT_EQ(ProbLine("m", i, eager_det->probabilities[i]),
              ProbLine("m", i, plan_det->probabilities[i]))
        << "candidate " << i;
  }
}

TEST(PlanParityTest, PlanModeIsThreadCountInvariant) {
  const eval::ExperimentConfig cfg1 = MakeConfig(core::ExecMode::kPlan, 1);
  const eval::ExperimentConfig cfg4 = MakeConfig(core::ExecMode::kPlan, 4);
  auto data = eval::BuildExperiment(cfg1);
  ASSERT_TRUE(data.ok()) << data.status();
  const auto model1 = MakeTrainedModel(cfg1, *data);
  const auto model4 = MakeTrainedModel(cfg4, *data);
  EXPECT_EQ(DetectLines(*model1, *data), DetectLines(*model4, *data));
}

TEST(PlanCacheTest, RepeatDetectsHitTheCacheAndStopAllocating) {
  const eval::ExperimentConfig cfg = MakeConfig(core::ExecMode::kPlan, 1);
  auto data = eval::BuildExperiment(cfg);
  ASSERT_TRUE(data.ok()) << data.status();
  const auto model = MakeTrainedModel(cfg, *data);
  auto pt = model->Preprocess(data->split.test.front().raw,
                              data->world->poi_index());
  ASSERT_TRUE(pt.ok()) << pt.status();

  obs::Counter& hits = obs::GetCounter("nn.plan.cache_hits");
  obs::Counter& misses = obs::GetCounter("nn.plan.cache_misses");

  // Warm-up: records the encode plan and both detector plans.
  ASSERT_TRUE(model->DetectProcessed(*pt).ok());
  const int64_t misses_after_warmup = misses.Value();
  const int64_t hits_after_warmup = hits.Value();
  EXPECT_GE(misses_after_warmup, 3);

  constexpr int kRepeats = 5;
  for (int i = 0; i < kRepeats; ++i) {
    const int64_t allocs_before = nn::TensorAllocsThisThread();
    ASSERT_TRUE(model->DetectProcessed(*pt).ok());
    const int64_t allocs = nn::TensorAllocsThisThread() - allocs_before;
    // Steady state: only the per-call result copies remain (encode output
    // + one probability row per detector), far below the thousands of
    // tape temporaries an eager detect allocates.
    EXPECT_LT(allocs, 32) << "steady-state detect " << i;
  }
  // Every warm detect hit all three plans and recorded nothing new.
  EXPECT_EQ(misses.Value(), misses_after_warmup);
  EXPECT_GE(hits.Value(), hits_after_warmup + 3 * kRepeats);

  // The eager oracle, by contrast, allocates a tensor per tape node.
  const eval::ExperimentConfig eager_cfg =
      MakeConfig(core::ExecMode::kEager, 1);
  const auto eager_model = MakeTrainedModel(eager_cfg, *data);
  const int64_t eager_before = nn::TensorAllocsThisThread();
  ASSERT_TRUE(eager_model->DetectProcessed(*pt).ok());
  EXPECT_GT(nn::TensorAllocsThisThread() - eager_before, 1000);
}

TEST(PlanRecorderTest, ArenaColoringSharesBuffersAcrossDeadTemps) {
  nn::Matrix in(4, 8);
  for (int i = 0; i < in.size(); ++i) {
    in.data()[i] = 0.1f * static_cast<float>(i % 13) - 0.5f;
  }

  nn::NoGradGuard no_grad;
  std::shared_ptr<const nn::Plan> plan;
  nn::Matrix eager_value;
  {
    nn::PlanRecorder recorder;
    const nn::Variable v = recorder.MakeInput(in);
    // A straight-line chain: every temp dies as soon as the next step
    // consumes it, so liveness coloring needs far fewer buffers than
    // temps.
    nn::Variable h = nn::Tanh(v);
    h = nn::Relu(h);
    h = nn::Tanh(h);
    h = nn::AddScalar(h, 0.25f);
    h = nn::ScalarMul(h, 1.5f);
    h = nn::Sigmoid(h);
    recorder.SetRoot(h);
    eager_value = h.value();
    plan = recorder.Finish();
  }
  ASSERT_NE(plan, nullptr);
  const nn::Plan::Stats& stats = plan->stats();
  EXPECT_EQ(stats.num_inputs, 1);
  EXPECT_EQ(stats.num_steps, 6);
  EXPECT_EQ(stats.num_temps, 6);
  EXPECT_LT(stats.num_buffers, stats.num_temps);
  EXPECT_GT(stats.arena_bytes, 0u);

  nn::Matrix out;
  plan->Execute({&in}, &out);
  ASSERT_TRUE(out.SameShape(eager_value));
  for (int i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out.data()[i], eager_value.data()[i]) << "element " << i;
  }

  // Replays against new values in the same buffers, allocation-free once
  // the output matrix has its final shape.
  for (int i = 0; i < in.size(); ++i) in.data()[i] += 0.03125f;
  const int64_t allocs_before = nn::TensorAllocsThisThread();
  plan->Execute({&in}, &out);
  EXPECT_EQ(nn::TensorAllocsThisThread(), allocs_before);
  nn::Variable fresh = nn::Sigmoid(nn::ScalarMul(
      nn::AddScalar(nn::Tanh(nn::Relu(nn::Tanh(nn::Variable::Constant(in)))),
                    0.25f),
      1.5f));
  for (int i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out.data()[i], fresh.value().data()[i]) << "element " << i;
  }
}

}  // namespace
}  // namespace lead
