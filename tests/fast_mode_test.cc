// Differential-oracle harness for ExecStrategy::kFast (the tentpole of
// the throughput-first execution mode): deterministic mode is the
// unchanged bit-parity oracle, and every fast-mode result is judged
// against it with the tests/differential.h contract — identical
// decisions, probabilities within a documented absolute tolerance, and
// training-loss curves within relative + absolute bands. On top of the
// golden-style fixture corpus, a seeded fuzz sweep (~50 simulated
// trajectories from worlds derived via Rng::ForStream) keeps the
// contract honest on inputs nobody hand-picked, and chaos-style stress
// (stalled reads vs. deadline, tiny memory budget, all-or-nothing
// cancellation) reuses the fault points from chaos_test to show the
// overlapped fused-stream pipeline degrades exactly like the
// deterministic one.
//
// Fault-driven tests GTEST_SKIP unless the build has
// -DLEAD_FAULT_INJECTION=ON (ci.sh's fault stage runs them).
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/budget.h"
#include "common/cancel.h"
#include "common/exec_strategy.h"
#include "common/fault.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/lead.h"
#include "eval/harness.h"
#include "io/csv.h"
#include "obs/metrics.h"
#include "differential.h"

namespace lead {
namespace {

// Probabilities are min-max-rescaled softmax outputs in [0, 1]; 1e-4
// is orders of magnitude above any FP drift the fast schedule can
// introduce while still far below the smallest decision-relevant gap
// observed on the fixture corpus.
constexpr float kProbTol = 1e-4f;

int64_t ElapsedMillis(uint64_t start_us) {
  return static_cast<int64_t>((obs::NowMicros() - start_us) / 1000);
}

// Same corpus recipe as chaos_test: one small simulated world, models
// trained with zero epochs (weights are then a pure function of the
// seed, so every strategy/thread combination trains byte-identical
// weights and differences can only come from the detect path).
class FastModeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    config_ =
        std::make_unique<eval::ExperimentConfig>(eval::DefaultConfig(1.0));
    config_->world.num_background_pois = 300;
    config_->dataset.num_trajectories = 40;
    config_->dataset.num_trucks = 10;
    config_->sim.sample_interval_mean_s = 240.0;
    config_->lead.train.autoencoder_epochs = 0;
    config_->lead.train.detector_epochs = 0;
    auto data = eval::BuildExperiment(*config_);
    ASSERT_TRUE(data.ok()) << data.status();
    data_ = std::make_unique<eval::ExperimentData>(std::move(*data));

    raws_ = std::make_unique<std::vector<traj::RawTrajectory>>();
    csv_ = std::make_unique<std::vector<std::string>>();
    ASSERT_GE(data_->split.test.size(), 3u);
    for (const sim::SimulatedDay& day : data_->split.test) {
      raws_->push_back(day.raw);
      std::ostringstream out;
      ASSERT_TRUE(io::WriteTrajectories({day.raw}, out).ok());
      csv_->push_back(out.str());
    }
  }

  static void TearDownTestSuite() {
    csv_.reset();
    raws_.reset();
    data_.reset();
    config_.reset();
  }

  static std::unique_ptr<core::LeadModel> ModelWith(ExecStrategy strategy,
                                                    int threads,
                                                    int64_t deadline_ms = 0) {
    core::LeadOptions options = config_->lead;
    options.train.strategy = strategy;
    options.train.threads = threads;
    options.detect.strategy = strategy;
    options.detect.threads = threads;
    options.detect.deadline_ms = deadline_ms;
    auto model = std::make_unique<core::LeadModel>(options);
    const Status trained =
        model->Train(data_->TrainLabeled(), data_->ValLabeled(),
                     data_->world->poi_index(), nullptr);
    EXPECT_TRUE(trained.ok()) << trained;
    return model;
  }

  static core::TrajectoryProvider CsvProvider() {
    return [](int index) -> StatusOr<traj::RawTrajectory> {
      std::istringstream in((*csv_)[static_cast<size_t>(index)]);
      auto rows = io::ReadTrajectories(in);
      if (!rows.ok()) return rows.status();
      if (rows->empty()) return InternalError("empty csv blob");
      return std::move((*rows)[0]);
    };
  }

  static int Count() { return static_cast<int>(csv_->size()); }

  static std::unique_ptr<eval::ExperimentConfig> config_;
  static std::unique_ptr<eval::ExperimentData> data_;
  static std::unique_ptr<std::vector<traj::RawTrajectory>> raws_;
  static std::unique_ptr<std::vector<std::string>> csv_;
};

std::unique_ptr<eval::ExperimentConfig> FastModeTest::config_;
std::unique_ptr<eval::ExperimentData> FastModeTest::data_;
std::unique_ptr<std::vector<traj::RawTrajectory>> FastModeTest::raws_;
std::unique_ptr<std::vector<std::string>> FastModeTest::csv_;

// Acceptance: on the fixture corpus, fast-mode batch detection (the
// overlapped fused-stream pipeline) is decision-equivalent to the
// deterministic 1-thread oracle at every thread count, with
// probabilities inside the documented tolerance.
TEST_F(FastModeTest, BatchDecisionsMatchOracleAcrossThreads) {
  const auto oracle = ModelWith(ExecStrategy::kDeterministic, 1);
  const auto ref =
      oracle->DetectBatch(*raws_, data_->world->poi_index());
  ASSERT_TRUE(ref.ok()) << ref.status();
  ASSERT_EQ(ref->completed, Count());

  for (const int threads : {1, 2, 4, 8}) {
    SCOPED_TRACE("fast threads=" + std::to_string(threads));
    const auto fast = ModelWith(ExecStrategy::kFast, threads);
    const auto got = fast->DetectBatch(*raws_, data_->world->poi_index());
    ASSERT_TRUE(got.ok()) << got.status();
    ASSERT_EQ(got->completed, Count());
    ASSERT_EQ(got->outcomes.size(), ref->outcomes.size());
    for (size_t i = 0; i < ref->outcomes.size(); ++i) {
      SCOPED_TRACE("item " + std::to_string(i));
      const core::Detection& want = ref->outcomes[i].detection;
      const core::Detection& have = got->outcomes[i].detection;
      EXPECT_TRUE(diff::SameDecision(want, have));
      EXPECT_TRUE(
          diff::ProbsWithin(want.probabilities, have.probabilities, kProbTol));
    }
  }
}

// The single-trajectory Detect path (DetectProcessed with fused
// small-bucket batches and dynamic loops) meets the same contract.
TEST_F(FastModeTest, SingleDetectMatchesOracle) {
  const auto oracle = ModelWith(ExecStrategy::kDeterministic, 1);
  const auto fast = ModelWith(ExecStrategy::kFast, 4);
  for (size_t i = 0; i < raws_->size(); ++i) {
    SCOPED_TRACE("trajectory " + std::to_string(i));
    const auto want = oracle->Detect((*raws_)[i], data_->world->poi_index());
    const auto have = fast->Detect((*raws_)[i], data_->world->poi_index());
    ASSERT_TRUE(want.ok()) << want.status();
    ASSERT_TRUE(have.ok()) << have.status();
    EXPECT_TRUE(diff::SameDecision(*want, *have));
    EXPECT_TRUE(
        diff::ProbsWithin(want->probabilities, have->probabilities, kProbTol));
  }
}

// Fast mode is allowed to diverge (within tolerance) from the oracle,
// but it must be invariant in itself: the dynamic schedule decides WHO
// scores a bucket, never WHAT a bucket computes, so every thread count
// produces bit-identical probabilities. Tolerance 0 keeps this sharp —
// a future schedule-dependent kernel must loosen it consciously.
TEST_F(FastModeTest, FastResultsInvariantAcrossThreads) {
  const auto base = ModelWith(ExecStrategy::kFast, 1);
  const auto ref = base->DetectBatch(*raws_, data_->world->poi_index());
  ASSERT_TRUE(ref.ok()) << ref.status();
  ASSERT_EQ(ref->completed, Count());
  for (const int threads : {2, 4, 8}) {
    SCOPED_TRACE("fast threads=" + std::to_string(threads));
    const auto fast = ModelWith(ExecStrategy::kFast, threads);
    const auto got = fast->DetectBatch(*raws_, data_->world->poi_index());
    ASSERT_TRUE(got.ok()) << got.status();
    ASSERT_EQ(got->outcomes.size(), ref->outcomes.size());
    for (size_t i = 0; i < ref->outcomes.size(); ++i) {
      SCOPED_TRACE("item " + std::to_string(i));
      EXPECT_TRUE(diff::SameDecision(ref->outcomes[i].detection,
                                     got->outcomes[i].detection));
      EXPECT_TRUE(diff::ProbsWithin(ref->outcomes[i].detection.probabilities,
                                    got->outcomes[i].detection.probabilities,
                                    0.0f));
    }
  }
}

// Seeded fuzzing: ~50 trajectories from 5 worlds whose seeds derive
// from Rng::ForStream, detected by the SAME trained weights under both
// strategies. Simulation failures (too few stay points) skip the item;
// the sweep must still compare a large majority of the corpus so a
// regression cannot hide behind "everything got skipped".
TEST_F(FastModeTest, FuzzedTrajectoriesAgreeAcrossStrategies) {
  const auto oracle = ModelWith(ExecStrategy::kDeterministic, 1);
  const auto fast = ModelWith(ExecStrategy::kFast, 4);
  int compared = 0;
  int skipped = 0;
  constexpr int kWorlds = 5;
  for (int k = 0; k < kWorlds; ++k) {
    SCOPED_TRACE("fuzz world " + std::to_string(k));
    Rng rng = Rng::ForStream(0xf22d, static_cast<uint64_t>(k));
    eval::ExperimentConfig config = *config_;
    config.world.seed = static_cast<uint64_t>(rng.UniformInt(1, 1 << 30));
    config.dataset.seed = static_cast<uint64_t>(rng.UniformInt(1, 1 << 30));
    // One day per truck; fewer trucks would leave the by-truck split
    // with an empty val/test bucket (BuildExperiment rejects that).
    config.dataset.num_trajectories = 10;
    config.dataset.num_trucks = 10;
    auto fuzz = eval::BuildExperiment(config);
    ASSERT_TRUE(fuzz.ok()) << fuzz.status();
    std::vector<const sim::SimulatedDay*> days;
    for (const auto& day : fuzz->split.train) days.push_back(&day);
    for (const auto& day : fuzz->split.val) days.push_back(&day);
    for (const auto& day : fuzz->split.test) days.push_back(&day);
    for (const sim::SimulatedDay* day : days) {
      SCOPED_TRACE("trajectory " + day->raw.trajectory_id);
      const auto want =
          oracle->Detect(day->raw, fuzz->world->poi_index());
      const auto have = fast->Detect(day->raw, fuzz->world->poi_index());
      // Both strategies must agree on detectability too.
      ASSERT_EQ(want.ok(), have.ok())
          << "oracle: " << want.status() << ", fast: " << have.status();
      if (!want.ok()) {
        ++skipped;
        continue;
      }
      EXPECT_TRUE(diff::SameDecision(*want, *have));
      EXPECT_TRUE(diff::ProbsWithin(want->probabilities, have->probabilities,
                                    kProbTol));
      ++compared;
    }
  }
  EXPECT_GE(compared, 40) << "only " << compared << " of "
                          << compared + skipped
                          << " fuzzed trajectories were comparable";
}

// Training-loss bands: with real epochs, the fast gradient schedule
// (thread-sized shards, flat reduction) may drift from the oracle's
// fixed 16-sample shards and pairwise tree, but each per-epoch loss must
// stay inside a 5% relative band and early stopping must fire on the
// same epoch (curve length is part of the contract).
TEST_F(FastModeTest, TrainingLossCurvesStayWithinBands) {
  eval::ExperimentConfig config = *config_;
  config.lead.train.autoencoder_epochs = 2;
  config.lead.train.detector_epochs = 2;
  config.lead.train.threads = 4;

  const auto train = [&](ExecStrategy strategy) -> core::TrainingLog {
    core::LeadOptions options = config.lead;
    options.train.strategy = strategy;
    core::LeadModel model(options);
    core::TrainingLog log;
    const Status trained =
        model.Train(data_->TrainLabeled(), data_->ValLabeled(),
                    data_->world->poi_index(), &log);
    EXPECT_TRUE(trained.ok()) << trained;
    return log;
  };
  const core::TrainingLog ref = train(ExecStrategy::kDeterministic);
  const core::TrainingLog got = train(ExecStrategy::kFast);

  constexpr float kRelTol = 0.05f;
  constexpr float kAbsTol = 1e-3f;
  ASSERT_FALSE(ref.autoencoder_mse.empty());
  EXPECT_TRUE(diff::LossesWithin(ref.autoencoder_mse, got.autoencoder_mse,
                                 kRelTol, kAbsTol));
  EXPECT_TRUE(diff::LossesWithin(ref.autoencoder_val_mse,
                                 got.autoencoder_val_mse, kRelTol, kAbsTol));
  EXPECT_TRUE(diff::LossesWithin(ref.forward_kld, got.forward_kld, kRelTol,
                                 kAbsTol));
  EXPECT_TRUE(diff::LossesWithin(ref.forward_val_kld, got.forward_val_kld,
                                 kRelTol, kAbsTol));
  EXPECT_TRUE(diff::LossesWithin(ref.backward_kld, got.backward_kld, kRelTol,
                                 kAbsTol));
  EXPECT_TRUE(diff::LossesWithin(ref.backward_val_kld, got.backward_val_kld,
                                 kRelTol, kAbsTol));
}

// ---------------------------------------------------------------------------
// Chaos-style stress: the fused-stream pipeline under faults, deadlines,
// and budgets (mirrors chaos_test's deterministic-path coverage).
// ---------------------------------------------------------------------------

// A read stalled inside the producer thread must not outlive the
// deadline: the consumer sheds the batch and the producer is joined
// before DetectStreamFused returns.
TEST_F(FastModeTest, FastStreamHonorsDeadlineUnderStalledReads) {
  if (!fault::Enabled()) GTEST_SKIP() << "fault injection compiled out";
  const auto model = ModelWith(ExecStrategy::kFast, 4, /*deadline_ms=*/300);
  fault::ArmStall("io.read.stall", 1, 10'000);
  const uint64_t t0 = obs::NowMicros();
  const auto batch =
      model->DetectStream(Count(), CsvProvider(), data_->world->poi_index());
  const int64_t elapsed_ms = ElapsedMillis(t0);
  const int fires = fault::Fires("io.read.stall");
  fault::DisarmAll();

  ASSERT_TRUE(batch.ok()) << batch.status();
  EXPECT_LT(elapsed_ms, 600) << "stall outlived 2x the 300 ms deadline";
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(batch->completed, 0);
  EXPECT_EQ(batch->shed, Count());
  EXPECT_EQ(batch->cause, CancelCause::kDeadline);
  for (const core::DetectionOutcome& outcome : batch->outcomes) {
    EXPECT_TRUE(outcome.degraded);
    EXPECT_EQ(outcome.status.code(), StatusCode::kDeadlineExceeded)
        << outcome.status;
  }
}

// Budget admission inside the fused stream degrades items, never the
// batch; lifting the cap restores full completion on the same inputs.
TEST_F(FastModeTest, FastTinyBudgetShedsItemsNotTheBatch) {
  const auto model = ModelWith(ExecStrategy::kFast, 4);
  MemoryBudget::Global().SetCapBytes(64);
  const auto batch =
      model->DetectStream(Count(), CsvProvider(), data_->world->poi_index());
  MemoryBudget::Global().SetCapBytes(0);

  ASSERT_TRUE(batch.ok()) << batch.status();
  EXPECT_EQ(batch->completed, 0);
  EXPECT_EQ(batch->shed, Count());
  EXPECT_EQ(batch->cause, CancelCause::kBudget);
  for (const core::DetectionOutcome& outcome : batch->outcomes) {
    EXPECT_TRUE(outcome.degraded);
    EXPECT_EQ(outcome.status.code(), StatusCode::kResourceExhausted)
        << outcome.status;
  }
  const auto retry =
      model->DetectStream(Count(), CsvProvider(), data_->world->poi_index());
  ASSERT_TRUE(retry.ok()) << retry.status();
  EXPECT_EQ(retry->completed, Count());
  EXPECT_EQ(retry->shed, 0);
}

// Without partial_results, fast streaming fails the whole call with the
// typed cancellation status — and still joins its producer thread on
// the early-return path (ASan/TSan in ci.sh would flag a leak or race).
TEST_F(FastModeTest, FastAllOrNothingReturnsTypedError) {
  core::LeadOptions options = config_->lead;
  options.detect.strategy = ExecStrategy::kFast;
  options.detect.threads = 4;
  options.detect.partial_results = false;
  core::LeadModel model(options);
  ASSERT_TRUE(model
                  .Train(data_->TrainLabeled(), data_->ValLabeled(),
                         data_->world->poi_index(), nullptr)
                  .ok());
  CancelToken token = CancelToken::Cancellable();
  token.Cancel(CancelCause::kUser);
  ScopedCancel scoped(token);
  const auto batch =
      model.DetectStream(Count(), CsvProvider(), data_->world->poi_index());
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(batch.status().code(), StatusCode::kCancelled) << batch.status();
}

}  // namespace
}  // namespace lead
