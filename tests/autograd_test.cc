// Unit tests for the autograd engine and tensor ops.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "nn/matrix.h"
#include "nn/ops.h"
#include "nn/variable.h"

namespace lead::nn {
namespace {

Matrix M(int rows, int cols, std::vector<float> values) {
  return Matrix(rows, cols, std::move(values));
}

TEST(VariableTest, ConstantHasNoGrad) {
  const Variable c = Variable::Constant(M(1, 2, {1.0f, 2.0f}));
  EXPECT_FALSE(c.requires_grad());
  EXPECT_EQ(c.rows(), 1);
  EXPECT_EQ(c.cols(), 2);
}

TEST(VariableTest, ParameterRequiresGrad) {
  const Variable p = Variable::Parameter(M(2, 2, {1, 2, 3, 4}));
  EXPECT_TRUE(p.requires_grad());
}

TEST(VariableTest, OpsOnConstantsProduceConstants) {
  const Variable a = Variable::Constant(M(1, 2, {1, 2}));
  const Variable b = Variable::Constant(M(1, 2, {3, 4}));
  const Variable sum = Add(a, b);
  EXPECT_FALSE(sum.requires_grad());
  EXPECT_FLOAT_EQ(sum.value().at(0, 0), 4.0f);
  EXPECT_FLOAT_EQ(sum.value().at(0, 1), 6.0f);
}

TEST(VariableTest, NoGradGuardSuppressesGraph) {
  const Variable p = Variable::Parameter(M(1, 2, {1, 2}));
  NoGradGuard guard;
  const Variable out = ScalarMul(p, 2.0f);
  EXPECT_FALSE(out.requires_grad());
}

TEST(VariableTest, GradientAccumulatesAcrossBackwardCalls) {
  Variable p = Variable::Parameter(M(1, 1, {3.0f}));
  Backward(Sum(p));
  Backward(Sum(p));
  EXPECT_FLOAT_EQ(p.grad().at(0, 0), 2.0f);
  p.ZeroGrad();
  EXPECT_FLOAT_EQ(p.grad().at(0, 0), 0.0f);
}

TEST(OpsTest, AddBroadcastsBiasRow) {
  const Variable a = Variable::Constant(M(2, 2, {1, 2, 3, 4}));
  const Variable bias = Variable::Constant(M(1, 2, {10, 20}));
  const Variable out = Add(a, bias);
  EXPECT_FLOAT_EQ(out.value().at(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(out.value().at(1, 1), 24.0f);
}

TEST(OpsTest, AddBroadcastGradientSumsOverRows) {
  Variable bias = Variable::Parameter(M(1, 2, {0, 0}));
  const Variable a = Variable::Constant(M(3, 2, {1, 2, 3, 4, 5, 6}));
  Backward(Sum(Add(a, bias)));
  EXPECT_FLOAT_EQ(bias.grad().at(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(bias.grad().at(0, 1), 3.0f);
}

TEST(OpsTest, MatMulValues) {
  const Variable a = Variable::Constant(M(2, 3, {1, 2, 3, 4, 5, 6}));
  const Variable b = Variable::Constant(M(3, 2, {7, 8, 9, 10, 11, 12}));
  const Variable out = MatMul(a, b);
  EXPECT_FLOAT_EQ(out.value().at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(out.value().at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(out.value().at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(out.value().at(1, 1), 154.0f);
}

TEST(OpsTest, MatMulGradient) {
  Variable a = Variable::Parameter(M(2, 2, {1, 2, 3, 4}));
  Variable b = Variable::Parameter(M(2, 2, {5, 6, 7, 8}));
  Backward(Sum(MatMul(a, b)));
  // dL/dA = 1 * B^T summed: each entry a_ij gets sum_j' b_j j'.
  EXPECT_FLOAT_EQ(a.grad().at(0, 0), 11.0f);  // 5 + 6
  EXPECT_FLOAT_EQ(a.grad().at(0, 1), 15.0f);  // 7 + 8
  EXPECT_FLOAT_EQ(b.grad().at(0, 0), 4.0f);   // 1 + 3
  EXPECT_FLOAT_EQ(b.grad().at(1, 1), 6.0f);   // 2 + 4
}

TEST(OpsTest, MulGradientIsOtherOperand) {
  Variable a = Variable::Parameter(M(1, 2, {2, 3}));
  Variable b = Variable::Parameter(M(1, 2, {5, 7}));
  Backward(Sum(Mul(a, b)));
  EXPECT_FLOAT_EQ(a.grad().at(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(a.grad().at(0, 1), 7.0f);
  EXPECT_FLOAT_EQ(b.grad().at(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(b.grad().at(0, 1), 3.0f);
}

TEST(OpsTest, TanhSigmoidReluValues) {
  const Variable x = Variable::Constant(M(1, 3, {-1.0f, 0.0f, 2.0f}));
  const Variable t = Tanh(x);
  EXPECT_NEAR(t.value().at(0, 0), std::tanh(-1.0f), 1e-6);
  const Variable s = Sigmoid(x);
  EXPECT_NEAR(s.value().at(0, 1), 0.5f, 1e-6);
  const Variable r = Relu(x);
  EXPECT_FLOAT_EQ(r.value().at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(r.value().at(0, 2), 2.0f);
}

TEST(OpsTest, TanhGradient) {
  Variable x = Variable::Parameter(M(1, 1, {0.5f}));
  Backward(Sum(Tanh(x)));
  const float y = std::tanh(0.5f);
  EXPECT_NEAR(x.grad().at(0, 0), 1.0f - y * y, 1e-6);
}

TEST(OpsTest, SoftmaxRowsSumToOne) {
  const Variable x = Variable::Constant(M(2, 3, {1, 2, 3, -1, 0, 1}));
  const Variable y = SoftmaxRows(x);
  for (int r = 0; r < 2; ++r) {
    float sum = 0.0f;
    for (int c = 0; c < 3; ++c) sum += y.value().at(r, c);
    EXPECT_NEAR(sum, 1.0f, 1e-6);
  }
}

TEST(OpsTest, SoftmaxIsShiftInvariant) {
  const Variable a = Variable::Constant(M(1, 3, {1, 2, 3}));
  const Variable b = Variable::Constant(M(1, 3, {1001, 1002, 1003}));
  const Variable ya = SoftmaxRows(a);
  const Variable yb = SoftmaxRows(b);
  for (int c = 0; c < 3; ++c) {
    EXPECT_NEAR(ya.value().at(0, c), yb.value().at(0, c), 1e-5);
  }
}

TEST(OpsTest, SoftmaxGradientNumerical) {
  Variable x = Variable::Parameter(M(1, 4, {0.2f, -0.3f, 0.8f, 0.1f}));
  // Loss: weighted sum of softmax outputs so the gradient is nontrivial.
  const Variable w = Variable::Constant(M(1, 4, {1.0f, -2.0f, 0.5f, 3.0f}));
  auto loss_fn = [&] { return Sum(Mul(SoftmaxRows(x), w)); };
  Backward(loss_fn());
  const float step = 1e-3f;
  for (int i = 0; i < 4; ++i) {
    const float original = x.mutable_value().data()[i];
    x.mutable_value().data()[i] = original + step;
    const float up = loss_fn().value().at(0, 0);
    x.mutable_value().data()[i] = original - step;
    const float down = loss_fn().value().at(0, 0);
    x.mutable_value().data()[i] = original;
    EXPECT_NEAR(x.grad().data()[i], (up - down) / (2 * step), 1e-3);
  }
}

TEST(OpsTest, SliceAndConcatRoundTrip) {
  const Variable x = Variable::Constant(M(3, 2, {1, 2, 3, 4, 5, 6}));
  const Variable top = SliceRows(x, 0, 1);
  const Variable rest = SliceRows(x, 1, 2);
  const Variable back = ConcatRows({top, rest});
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 2; ++c) {
      EXPECT_FLOAT_EQ(back.value().at(r, c), x.value().at(r, c));
    }
  }
}

TEST(OpsTest, SliceRowsGradientScattersToSource) {
  Variable x = Variable::Parameter(M(3, 2, {1, 2, 3, 4, 5, 6}));
  Backward(Sum(SliceRows(x, 1, 1)));
  EXPECT_FLOAT_EQ(x.grad().at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(x.grad().at(1, 0), 1.0f);
  EXPECT_FLOAT_EQ(x.grad().at(1, 1), 1.0f);
  EXPECT_FLOAT_EQ(x.grad().at(2, 0), 0.0f);
}

TEST(OpsTest, SliceColsGradient) {
  Variable x = Variable::Parameter(M(2, 3, {1, 2, 3, 4, 5, 6}));
  Backward(Sum(SliceCols(x, 1, 2)));
  EXPECT_FLOAT_EQ(x.grad().at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(x.grad().at(0, 1), 1.0f);
  EXPECT_FLOAT_EQ(x.grad().at(1, 2), 1.0f);
}

TEST(OpsTest, ConcatColsValuesAndGradient) {
  Variable a = Variable::Parameter(M(2, 1, {1, 2}));
  Variable b = Variable::Parameter(M(2, 2, {3, 4, 5, 6}));
  const Variable out = ConcatCols({a, b});
  EXPECT_EQ(out.cols(), 3);
  EXPECT_FLOAT_EQ(out.value().at(1, 2), 6.0f);
  Backward(Sum(out));
  EXPECT_FLOAT_EQ(a.grad().at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(b.grad().at(1, 1), 1.0f);
}

TEST(OpsTest, ReverseRowsTwiceIsIdentity) {
  const Variable x = Variable::Constant(M(3, 1, {1, 2, 3}));
  const Variable twice = ReverseRows(ReverseRows(x));
  for (int r = 0; r < 3; ++r) {
    EXPECT_FLOAT_EQ(twice.value().at(r, 0), x.value().at(r, 0));
  }
  const Variable once = ReverseRows(x);
  EXPECT_FLOAT_EQ(once.value().at(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(once.value().at(2, 0), 1.0f);
}

TEST(OpsTest, TransposeGradient) {
  Variable x = Variable::Parameter(M(2, 3, {1, 2, 3, 4, 5, 6}));
  const Variable w = Variable::Constant(M(3, 2, {1, 0, 0, 1, 2, 2}));
  Backward(Sum(Mul(Transpose(x), w)));
  EXPECT_FLOAT_EQ(x.grad().at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(x.grad().at(0, 2), 2.0f);
  EXPECT_FLOAT_EQ(x.grad().at(1, 2), 2.0f);
}

TEST(OpsTest, MeanIsSumOverN) {
  const Variable x = Variable::Constant(M(2, 2, {1, 2, 3, 6}));
  EXPECT_FLOAT_EQ(Mean(x).value().at(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(Sum(x).value().at(0, 0), 12.0f);
}

TEST(OpsTest, MseLossValueAndGradient) {
  Variable pred = Variable::Parameter(M(1, 2, {1.0f, 3.0f}));
  const Variable target = Variable::Constant(M(1, 2, {0.0f, 1.0f}));
  const Variable loss = MseLoss(pred, target);
  EXPECT_FLOAT_EQ(loss.value().at(0, 0), (1.0f + 4.0f) / 2.0f);
  Backward(loss);
  EXPECT_FLOAT_EQ(pred.grad().at(0, 0), 2.0f * 1.0f / 2.0f);
  EXPECT_FLOAT_EQ(pred.grad().at(0, 1), 2.0f * 2.0f / 2.0f);
}

TEST(OpsTest, KlDivergenceZeroWhenEqual) {
  const Variable p = Variable::Constant(M(1, 3, {0.2f, 0.3f, 0.5f}));
  Variable q = Variable::Parameter(M(1, 3, {0.2f, 0.3f, 0.5f}));
  EXPECT_NEAR(KlDivergence(p, q).value().at(0, 0), 0.0f, 1e-6);
}

TEST(OpsTest, KlDivergencePositiveAndGradient) {
  const Variable p = Variable::Constant(M(1, 2, {0.9f, 0.1f}));
  Variable q = Variable::Parameter(M(1, 2, {0.5f, 0.5f}));
  const Variable loss = KlDivergence(p, q);
  const float expected =
      0.9f * std::log(0.9f / 0.5f) + 0.1f * std::log(0.1f / 0.5f);
  EXPECT_NEAR(loss.value().at(0, 0), expected, 1e-5);
  Backward(loss);
  EXPECT_NEAR(q.grad().at(0, 0), -0.9f / 0.5f, 1e-5);
  EXPECT_NEAR(q.grad().at(0, 1), -0.1f / 0.5f, 1e-5);
}

TEST(OpsTest, LogClampsNearZero) {
  const Variable x = Variable::Constant(M(1, 2, {0.0f, 1.0f}));
  const Variable y = Log(x, 1e-6f);
  EXPECT_NEAR(y.value().at(0, 0), std::log(1e-6f), 1e-3);
  EXPECT_NEAR(y.value().at(0, 1), 0.0f, 1e-6);
}

TEST(OpsTest, DiamondGraphAccumulatesBothPaths) {
  // loss = sum(x * x) -> dx = 2x via two uses of the same node.
  Variable x = Variable::Parameter(M(1, 2, {3.0f, -2.0f}));
  Backward(Sum(Mul(x, x)));
  EXPECT_FLOAT_EQ(x.grad().at(0, 0), 6.0f);
  EXPECT_FLOAT_EQ(x.grad().at(0, 1), -4.0f);
}

TEST(OpsTest, DeepChainGradient) {
  // loss = sum(tanh(tanh(...tanh(x)))), 20 deep; just verify it is finite
  // and matches a numeric estimate.
  Variable x = Variable::Parameter(M(1, 1, {0.7f}));
  auto loss_fn = [&] {
    Variable h = x;
    for (int i = 0; i < 20; ++i) h = Tanh(h);
    return Sum(h);
  };
  Backward(loss_fn());
  const float analytic = x.grad().at(0, 0);
  const float step = 1e-3f;
  x.mutable_value().at(0, 0) = 0.7f + step;
  const float up = loss_fn().value().at(0, 0);
  x.mutable_value().at(0, 0) = 0.7f - step;
  const float down = loss_fn().value().at(0, 0);
  EXPECT_NEAR(analytic, (up - down) / (2 * step), 1e-3);
}

}  // namespace
}  // namespace lead::nn
