// Tests for the synthetic world, truck-day simulator and dataset splits.
#include <set>
#include <unordered_set>

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "sim/dataset.h"
#include "sim/truck_sim.h"
#include "sim/world.h"
#include "traj/noise_filter.h"
#include "traj/stay_point.h"

namespace lead::sim {
namespace {

WorldOptions SmallWorldOptions() {
  WorldOptions options;
  options.num_background_pois = 3000;
  options.num_loading_facilities = 12;
  options.num_unloading_facilities = 24;
  options.num_rest_areas = 30;
  options.num_depots = 8;
  options.seed = 5;
  return options;
}

TEST(WorldTest, GeneratesRequestedEntities) {
  const WorldOptions options = SmallWorldOptions();
  const std::unique_ptr<World> world = World::Generate(options);
  EXPECT_EQ(static_cast<int>(world->loading_facilities().size()),
            options.num_loading_facilities);
  EXPECT_EQ(static_cast<int>(world->unloading_facilities().size()),
            options.num_unloading_facilities);
  EXPECT_EQ(static_cast<int>(world->rest_areas().size()),
            options.num_rest_areas);
  EXPECT_EQ(static_cast<int>(world->depots().size()), options.num_depots);
  // Background POIs plus facility signatures.
  EXPECT_GT(world->poi_index().size(), options.num_background_pois);
}

TEST(WorldTest, DeterministicInSeed) {
  const std::unique_ptr<World> a = World::Generate(SmallWorldOptions());
  const std::unique_ptr<World> b = World::Generate(SmallWorldOptions());
  ASSERT_EQ(a->loading_facilities().size(), b->loading_facilities().size());
  for (size_t i = 0; i < a->loading_facilities().size(); ++i) {
    EXPECT_EQ(a->loading_facilities()[i].pos,
              b->loading_facilities()[i].pos);
  }
  EXPECT_EQ(a->poi_index().size(), b->poi_index().size());
}

TEST(WorldTest, EntitiesInsideBounds) {
  const std::unique_ptr<World> world = World::Generate(SmallWorldOptions());
  const geo::BoundingBox& bounds = world->bounds();
  for (const Facility& f : world->loading_facilities()) {
    EXPECT_TRUE(bounds.Contains(f.pos));
    EXPECT_TRUE(f.can_load);
  }
  for (const Facility& f : world->unloading_facilities()) {
    EXPECT_TRUE(bounds.Contains(f.pos));
    EXPECT_TRUE(f.can_unload);
  }
  for (const poi::Poi& p : world->poi_index().pois()) {
    EXPECT_TRUE(bounds.Contains(p.pos));
  }
}

TEST(WorldTest, LoadingFacilitiesHavePoiSignature) {
  const std::unique_ptr<World> world = World::Generate(SmallWorldOptions());
  // Every loading facility must have at least its own POI within 100 m.
  for (const Facility& f : world->loading_facilities()) {
    EXPECT_TRUE(world->poi_index().AnyWithin(f.pos, 100.0));
  }
}

class TruckSimTest : public ::testing::Test {
 protected:
  TruckSimTest()
      : world_(World::Generate(SmallWorldOptions())),
        simulator_(world_.get(), SimOptions(), traj::NoiseFilterOptions(),
                   traj::StayPointOptions()) {}

  std::unique_ptr<World> world_;
  TruckSimulator simulator_;
};

TEST_F(TruckSimTest, ProducesWellFormedLabeledDay) {
  Rng rng(11);
  const std::optional<SimulatedDay> day =
      simulator_.SimulateDay("truck_x", "traj_x", 0, &rng);
  ASSERT_TRUE(day.has_value());
  EXPECT_EQ(day->raw.truck_id, "truck_x");
  EXPECT_TRUE(traj::ValidateChronological(day->raw).ok());
  EXPECT_GE(day->num_stay_points, 3);
  EXPECT_LE(day->num_stay_points, 14);
  EXPECT_LT(day->loaded_label.start_sp, day->loaded_label.end_sp);
  EXPECT_LT(day->loaded_label.end_sp, day->num_stay_points);
}

TEST_F(TruckSimTest, LabelMatchesReextraction) {
  // Re-running the canonical pipeline must reproduce the stay-point count
  // and place the labeled stay points at the true service locations.
  Rng rng(12);
  const std::optional<SimulatedDay> day =
      simulator_.SimulateDay("t", "tr", 1, &rng);
  ASSERT_TRUE(day.has_value());
  const traj::RawTrajectory cleaned = traj::FilterNoise(day->raw).cleaned;
  const std::vector<traj::StayPoint> stays =
      traj::ExtractStayPoints(cleaned);
  ASSERT_EQ(static_cast<int>(stays.size()), day->num_stay_points);
  const traj::StayPoint& load = stays[day->loaded_label.start_sp];
  const traj::StayPoint& unload = stays[day->loaded_label.end_sp];
  EXPECT_LE(geo::DistanceMeters(load.centroid, day->truth.load_pos), 600.0);
  EXPECT_LE(geo::DistanceMeters(unload.centroid, day->truth.unload_pos),
            600.0);
  EXPECT_LT(load.departure_t, unload.arrival_t);
}

TEST_F(TruckSimTest, LoadedPhaseIsSlower) {
  // Average speed between loading and unloading should be lower than the
  // unloaded approach (loaded_speed_factor < 1).
  Rng rng(13);
  double loaded_speed_sum = 0.0;
  double empty_speed_sum = 0.0;
  int trials = 0;
  for (int i = 0; i < 10; ++i) {
    const std::optional<SimulatedDay> day =
        simulator_.SimulateDay("t", "tr", i, &rng);
    if (!day.has_value()) continue;
    const auto& truth = day->truth;
    double loaded_dist = 0.0, loaded_time = 0.0;
    double empty_dist = 0.0, empty_time = 0.0;
    const auto& points = day->raw.points;
    for (size_t j = 1; j < points.size(); ++j) {
      const double d =
          geo::DistanceMeters(points[j - 1].pos, points[j].pos);
      const double dt = static_cast<double>(points[j].t - points[j - 1].t);
      const double speed_kmh = d / dt * 3.6;
      // Only count driving intervals: skip stationary samples (stays) and
      // injected outliers.
      if (speed_kmh < 15.0 || speed_kmh > 130.0) continue;
      const int64_t mid = (points[j - 1].t + points[j].t) / 2;
      if (mid > truth.load_depart_t && mid < truth.unload_arrive_t) {
        loaded_dist += d;
        loaded_time += dt;
      } else if (mid < truth.load_arrive_t) {
        empty_dist += d;
        empty_time += dt;
      }
    }
    if (loaded_time > 600 && empty_time > 600) {
      loaded_speed_sum += loaded_dist / loaded_time;
      empty_speed_sum += empty_dist / empty_time;
      ++trials;
    }
  }
  ASSERT_GT(trials, 3);
  EXPECT_LT(loaded_speed_sum, empty_speed_sum);
}

TEST_F(TruckSimTest, InjectsFilterableOutliers) {
  Rng rng(14);
  int removed_total = 0;
  for (int i = 0; i < 8; ++i) {
    const std::optional<SimulatedDay> day =
        simulator_.SimulateDay("t", "tr", i, &rng);
    if (!day.has_value()) continue;
    removed_total += static_cast<int>(
        traj::FilterNoise(day->raw).removed_indices.size());
  }
  // outlier_prob ~0.4% over thousands of points: expect at least a few.
  EXPECT_GT(removed_total, 0);
}

TEST_F(TruckSimTest, WaybillCorruptionRatesRoughlyMatchOptions) {
  Rng rng(15);
  int defaults = 0;
  int total = 0;
  for (int i = 0; i < 30; ++i) {
    const std::optional<SimulatedDay> day =
        simulator_.SimulateDay("t", "tr", i, &rng);
    if (!day.has_value()) continue;
    ++total;
    defaults += day->waybill.used_default_times ? 1 : 0;
  }
  ASSERT_GT(total, 20);
  // 45% +- wide tolerance.
  EXPECT_GT(defaults, total / 5);
  EXPECT_LT(defaults, total * 4 / 5);
}

TEST(DatasetTest, GeneratesAndSplitsByTruck) {
  const std::unique_ptr<World> world = World::Generate(SmallWorldOptions());
  const TruckSimulator simulator(world.get(), SimOptions(),
                                 traj::NoiseFilterOptions(),
                                 traj::StayPointOptions());
  DatasetOptions options;
  options.num_trajectories = 40;
  options.num_trucks = 20;
  options.seed = 3;
  auto dataset = GenerateDataset(*world, simulator, options);
  ASSERT_TRUE(dataset.ok()) << dataset.status();
  EXPECT_EQ(static_cast<int>(dataset->days.size()), 40);

  const DatasetSplit split = SplitByTruck(*std::move(dataset), options);
  EXPECT_FALSE(split.train.empty());
  EXPECT_FALSE(split.val.empty());
  EXPECT_FALSE(split.test.empty());
  EXPECT_EQ(split.train.size() + split.val.size() + split.test.size(), 40u);

  std::unordered_set<std::string> train_trucks;
  for (const SimulatedDay& d : split.train) {
    train_trucks.insert(d.raw.truck_id);
  }
  for (const SimulatedDay& d : split.val) {
    EXPECT_FALSE(train_trucks.contains(d.raw.truck_id));
  }
  for (const SimulatedDay& d : split.test) {
    EXPECT_FALSE(train_trucks.contains(d.raw.truck_id));
  }
}

TEST(DatasetTest, StayCountsSpanBuckets) {
  const std::unique_ptr<World> world = World::Generate(SmallWorldOptions());
  const TruckSimulator simulator(world.get(), SimOptions(),
                                 traj::NoiseFilterOptions(),
                                 traj::StayPointOptions());
  DatasetOptions options;
  options.num_trajectories = 60;
  options.num_trucks = 30;
  options.seed = 4;
  auto dataset = GenerateDataset(*world, simulator, options);
  ASSERT_TRUE(dataset.ok()) << dataset.status();
  std::set<int> buckets;
  for (const SimulatedDay& d : dataset->days) {
    const int b = eval::BucketOf(d.num_stay_points);
    ASSERT_GE(b, 0);
    buckets.insert(b);
  }
  // All four buckets should appear in 60 draws (shares 22/34/25/19%).
  EXPECT_EQ(buckets.size(), 4u);
}

TEST(DatasetTest, RejectsBadOptions) {
  const std::unique_ptr<World> world = World::Generate(SmallWorldOptions());
  const TruckSimulator simulator(world.get(), SimOptions(),
                                 traj::NoiseFilterOptions(),
                                 traj::StayPointOptions());
  DatasetOptions options;
  options.num_trajectories = 0;
  EXPECT_FALSE(GenerateDataset(*world, simulator, options).ok());
}

}  // namespace
}  // namespace lead::sim
