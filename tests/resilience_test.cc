// Training & inference resilience: NaN-gradient detection with rollback
// and LR backoff, durable checkpoint/resume after a simulated kill, and
// clean Status handling of degenerate Detect inputs.
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "common/fault.h"
#include "common/rng.h"
#include "core/lead.h"
#include "eval/harness.h"
#include "nn/adam.h"
#include "nn/linear.h"

namespace lead {
namespace {

// One small corpus for the whole binary; each test trains only a few
// epochs on it.
class ResilienceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    eval::ExperimentConfig config = eval::DefaultConfig(1.0);
    config.world.num_background_pois = 1500;
    config.world.num_loading_facilities = 8;
    config.world.num_unloading_facilities = 12;
    config.world.num_rest_areas = 12;
    config.world.num_depots = 6;
    config.dataset.num_trajectories = 40;
    config.dataset.num_trucks = 20;
    config.sim.sample_interval_mean_s = 240.0;
    config.lead.train.autoencoder_epochs = 3;
    config.lead.train.detector_epochs = 4;
    config.lead.train.max_candidates_per_trajectory = 4;
    config.lead.train.batch_size = 8;
    config.lead.train.learning_rate = 1e-3f;
    config_ = std::make_unique<eval::ExperimentConfig>(config);
    auto data = eval::BuildExperiment(config);
    ASSERT_TRUE(data.ok()) << data.status();
    data_ = std::make_unique<eval::ExperimentData>(std::move(data).value());
  }
  static void TearDownTestSuite() {
    data_.reset();
    config_.reset();
  }
  void TearDown() override { fault::DisarmAll(); }

  static std::unique_ptr<eval::ExperimentConfig> config_;
  static std::unique_ptr<eval::ExperimentData> data_;
};

std::unique_ptr<eval::ExperimentConfig> ResilienceTest::config_;
std::unique_ptr<eval::ExperimentData> ResilienceTest::data_;

TEST_F(ResilienceTest, NanGradientTriggersRollbackAndTrainingCompletes) {
  if (!fault::Enabled()) GTEST_SKIP() << "fault injection compiled out";
  // Poison one gradient a few optimizer steps into the autoencoder
  // stage: the epoch loss goes non-finite (or the weights do), the
  // sentinel must roll back to the last good snapshot, back off the
  // learning rate, and finish training successfully.
  fault::ArmNonFinite("adam.grad", /*nth=*/3);
  core::LeadModel model(config_->lead);
  core::TrainingLog log;
  const Status status = model.Train(data_->TrainLabeled(),
                                    data_->ValLabeled(),
                                    data_->world->poi_index(), &log);
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_EQ(fault::Fires("adam.grad"), 1);
  ASSERT_FALSE(log.recoveries.empty());
  EXPECT_EQ(log.recoveries[0].stage, "autoencoder");
  EXPECT_LT(log.recoveries[0].lr_scale, 1.0f);  // LR was backed off
  // Recovered training still produces a working detector.
  auto detection =
      model.Detect(data_->split.test[0].raw, data_->world->poi_index());
  ASSERT_TRUE(detection.ok()) << detection.status();
  for (float p : detection->probabilities) EXPECT_TRUE(std::isfinite(p));
}

TEST_F(ResilienceTest, ExhaustedRecoveryBudgetFailsWithStatus) {
  if (!fault::Enabled()) GTEST_SKIP() << "fault injection compiled out";
  core::LeadOptions options = config_->lead;
  options.train.max_recoveries = 0;  // first rollback already exceeds it
  core::LeadModel model(options);
  fault::ArmNonFinite("adam.grad", /*nth=*/3);
  const Status status = model.Train(data_->TrainLabeled(),
                                    data_->ValLabeled(),
                                    data_->world->poi_index(), nullptr);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
}

TEST_F(ResilienceTest, KillAndResumeProducesLoadableModel) {
  if (!fault::Enabled()) GTEST_SKIP() << "fault injection compiled out";
  const std::string dir = ::testing::TempDir() + "/lead_resume_ckpt";
  std::filesystem::remove_all(dir);
  core::LeadOptions options = config_->lead;
  options.train.checkpoint_dir = dir;
  const std::string ckpt = dir + "/lead_train.ckpt";

  // First attempt dies right after the third durable checkpoint write
  // (mid-autoencoder), as a kill -9 between epochs would.
  {
    fault::ArmFail("train.epoch", /*nth=*/3);
    core::LeadModel model(options);
    core::TrainingLog log;
    const Status status = model.Train(data_->TrainLabeled(),
                                      data_->ValLabeled(),
                                      data_->world->poi_index(), &log);
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.message().find("injected fault"), std::string::npos)
        << status;
  }
  ASSERT_TRUE(std::filesystem::exists(ckpt));

  // Second attempt (a fresh process: new model object) must resume from
  // the checkpoint, skip the finished epochs, and complete.
  core::LeadModel model(options);
  core::TrainingLog log;
  const Status status = model.Train(data_->TrainLabeled(),
                                    data_->ValLabeled(),
                                    data_->world->poi_index(), &log);
  ASSERT_TRUE(status.ok()) << status;
  ASSERT_FALSE(log.recoveries.empty());
  EXPECT_NE(log.recoveries[0].reason.find("resumed from checkpoint"),
            std::string::npos);
  // The first attempt checkpointed all 3 AE epochs, so the resumed run
  // retrains none of them but still trains the detectors.
  EXPECT_TRUE(log.autoencoder_mse.empty());
  EXPECT_FALSE(log.forward_kld.empty());
  // Success removes the checkpoint cursor.
  EXPECT_FALSE(std::filesystem::exists(ckpt));

  // The resumed model saves, reloads, and detects.
  const std::string model_path = dir + "/resumed_model.bin";
  ASSERT_TRUE(model.Save(model_path).ok());
  core::LeadModel reloaded(options);
  ASSERT_TRUE(reloaded.Load(model_path).ok());
  auto detection = reloaded.Detect(data_->split.test[0].raw,
                                   data_->world->poi_index());
  ASSERT_TRUE(detection.ok()) << detection.status();
  std::filesystem::remove_all(dir);
}

TEST_F(ResilienceTest, CorruptedResumeCheckpointStartsFresh) {
  const std::string dir = ::testing::TempDir() + "/lead_corrupt_ckpt";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  {
    std::ofstream garbage(dir + "/lead_train.ckpt", std::ios::binary);
    garbage << "this is not a checkpoint";
  }
  core::LeadOptions options = config_->lead;
  options.train.checkpoint_dir = dir;
  core::LeadModel model(options);
  core::TrainingLog log;
  const Status status = model.Train(data_->TrainLabeled(),
                                    data_->ValLabeled(),
                                    data_->world->poi_index(), &log);
  ASSERT_TRUE(status.ok()) << status;
  ASSERT_FALSE(log.recoveries.empty());
  EXPECT_NE(log.recoveries[0].reason.find("checkpoint discarded"),
            std::string::npos)
      << log.recoveries[0].reason;
  // Fresh training ran in full.
  EXPECT_FALSE(log.autoencoder_mse.empty());
  std::filesystem::remove_all(dir);
}

TEST_F(ResilienceTest, TruncatedModelFileRejectedByLoad) {
  // Train quickly, save, then clip the file: Load must return a clean
  // Status (CRC/truncation), never crash or accept the prefix.
  core::LeadModel model(config_->lead);
  ASSERT_TRUE(model
                  .Train(data_->TrainLabeled(), data_->ValLabeled(),
                         data_->world->poi_index(), nullptr)
                  .ok());
  const std::string path = ::testing::TempDir() + "/truncated_model.bin";
  ASSERT_TRUE(model.Save(path).ok());
  const auto full_size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full_size / 2);
  core::LeadModel reloaded(config_->lead);
  const Status status = reloaded.Load(path);
  EXPECT_FALSE(status.ok());
  // A failed load must not leave a half-trained impostor behind.
  EXPECT_FALSE(reloaded.trained());
  std::remove(path.c_str());
}

TEST_F(ResilienceTest, DegenerateDetectInputsReturnStatusNotCrash) {
  core::LeadModel model(config_->lead);
  ASSERT_TRUE(model
                  .Train(data_->TrainLabeled(), data_->ValLabeled(),
                         data_->world->poi_index(), nullptr)
                  .ok());
  const poi::PoiIndex& pois = data_->world->poi_index();

  traj::RawTrajectory empty;
  empty.trajectory_id = "empty";
  EXPECT_EQ(model.Detect(empty, pois).status().code(),
            StatusCode::kInvalidArgument);

  traj::RawTrajectory single;
  single.trajectory_id = "single";
  single.points = {{{32.0, 120.9}, 1000}};
  EXPECT_EQ(model.Detect(single, pois).status().code(),
            StatusCode::kFailedPrecondition);

  // Physically impossible jumps: every move is filtered as noise, so no
  // two stay points survive.
  traj::RawTrajectory noise;
  noise.trajectory_id = "all_noise";
  for (int i = 0; i < 10; ++i) {
    noise.points.push_back({{32.0 + (i % 2), 120.9}, 1000 + i});
  }
  EXPECT_FALSE(model.Detect(noise, pois).ok());

  traj::RawTrajectory bad_coords;
  bad_coords.trajectory_id = "nan_coords";
  bad_coords.points = {
      {{32.0, 120.9}, 1000},
      {{std::numeric_limits<double>::quiet_NaN(), 120.9}, 1100},
  };
  EXPECT_EQ(model.Detect(bad_coords, pois).status().code(),
            StatusCode::kInvalidArgument);

  // A hand-built processed trajectory without stays is refused too.
  core::ProcessedTrajectory hollow;
  EXPECT_EQ(model.DetectProcessed(hollow).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(OptimizerSentinelTest, NonFiniteGradientSkipsTheStep) {
  Rng rng(11);
  nn::Linear layer(3, 2, &rng);
  std::vector<nn::Variable> params = layer.Parameters();
  const nn::Matrix before = params[0].value();
  nn::Adam optimizer(layer.Parameters(), {.learning_rate = 0.1f});
  params[0].node()->grad.data()[0] =
      std::numeric_limits<float>::quiet_NaN();
  optimizer.Step();
  EXPECT_EQ(optimizer.skipped_steps(), 1);
  const nn::Matrix& after = params[0].value();
  for (int i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before.data()[i], after.data()[i]) << "weights moved";
  }
  // A finite gradient afterwards steps normally.
  optimizer.ZeroGrad();
  params[0].node()->grad.data()[0] = 1.0f;
  optimizer.Step();
  EXPECT_EQ(optimizer.skipped_steps(), 1);
  EXPECT_NE(params[0].value().data()[0], before.data()[0]);
}

}  // namespace
}  // namespace lead
