// Checkpoint durability: CRC-32 detection of truncation and bit rot,
// atomic file writes, shape validation — driven through the named fault
// points of common/fault.h.
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault.h"
#include "common/rng.h"
#include "nn/linear.h"
#include "nn/serialize.h"

namespace lead {
namespace {

std::vector<nn::Matrix> Values(const nn::Module& module) {
  std::vector<nn::Matrix> out;
  for (const nn::NamedParameter& p : module.NamedParameters()) {
    out.push_back(p.variable.value());
  }
  return out;
}

void ExpectSameValues(const nn::Module& a, const nn::Module& b) {
  const std::vector<nn::Matrix> va = Values(a);
  const std::vector<nn::Matrix> vb = Values(b);
  ASSERT_EQ(va.size(), vb.size());
  for (size_t k = 0; k < va.size(); ++k) {
    ASSERT_EQ(va[k].rows(), vb[k].rows());
    ASSERT_EQ(va[k].cols(), vb[k].cols());
    for (int i = 0; i < va[k].size(); ++i) {
      EXPECT_EQ(va[k].data()[i], vb[k].data()[i]);
    }
  }
}

class SerializeRobustnessTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::DisarmAll(); }
};

TEST_F(SerializeRobustnessTest, RoundTripsThroughStreamAndFile) {
  Rng rng(1);
  Rng rng2(2);
  nn::Linear source(4, 3, &rng);
  nn::Linear stream_copy(4, 3, &rng2);
  std::stringstream buffer;
  ASSERT_TRUE(nn::SaveParameters(source, buffer).ok());
  ASSERT_TRUE(nn::LoadParameters(&stream_copy, buffer).ok());
  ExpectSameValues(source, stream_copy);

  const std::string path = ::testing::TempDir() + "/roundtrip.ckpt";
  nn::Linear file_copy(4, 3, &rng2);
  ASSERT_TRUE(nn::SaveParametersToFile(source, path).ok());
  ASSERT_TRUE(nn::LoadParametersFromFile(&file_copy, path).ok());
  ExpectSameValues(source, file_copy);
  std::remove(path.c_str());
}

TEST_F(SerializeRobustnessTest, RejectsTruncatedCheckpoint) {
  Rng rng(3);
  nn::Linear model(4, 3, &rng);
  std::ostringstream buffer;
  ASSERT_TRUE(nn::SaveParameters(model, buffer).ok());
  const std::string full = buffer.str();
  // Every proper prefix must be rejected with a Status, never a crash.
  for (const size_t keep :
       {size_t{0}, size_t{7}, size_t{15}, full.size() / 2,
        full.size() - 1}) {
    std::istringstream truncated(full.substr(0, keep));
    nn::Linear target(4, 3, &rng);
    const Status status = nn::LoadParameters(&target, truncated);
    EXPECT_FALSE(status.ok()) << "prefix of " << keep << " bytes loaded";
  }
}

TEST_F(SerializeRobustnessTest, TornWriteFaultSurfacesIoError) {
  if (!fault::Enabled()) GTEST_SKIP() << "fault injection compiled out";
  Rng rng(4);
  nn::Linear model(4, 3, &rng);
  std::stringstream buffer;
  fault::ArmFail("serialize.write", 1);
  const Status status = nn::SaveParameters(model, buffer);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_EQ(fault::Fires("serialize.write"), 1);
  // The torn half-write it left behind must be rejected on load.
  nn::Linear target(4, 3, &rng);
  EXPECT_FALSE(nn::LoadParameters(&target, buffer).ok());
}

TEST_F(SerializeRobustnessTest, BitFlipIsCaughtByCrc) {
  if (!fault::Enabled()) GTEST_SKIP() << "fault injection compiled out";
  Rng rng(5);
  nn::Linear model(4, 3, &rng);
  // Clean save first, to find where the payload (pre-footer) ends.
  std::ostringstream clean;
  ASSERT_TRUE(nn::SaveParameters(model, clean).ok());
  const size_t payload_size = clean.str().size() - sizeof(uint32_t);

  // Flip the last payload byte (inside the final parameter's float data)
  // after the CRC has been computed: the save succeeds, the load must
  // detect the rot.
  fault::ArmCorrupt("serialize.body", 1, 0x01, payload_size - 1);
  std::stringstream corrupted;
  ASSERT_TRUE(nn::SaveParameters(model, corrupted).ok());
  EXPECT_EQ(fault::Fires("serialize.body"), 1);

  nn::Linear target(4, 3, &rng);
  const Status status = nn::LoadParameters(&target, corrupted);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_NE(status.message().find("CRC"), std::string::npos) << status;
}

TEST_F(SerializeRobustnessTest, RejectsWrongShapeAndWrongArchitecture) {
  Rng rng(6);
  nn::Linear model(4, 3, &rng);
  std::ostringstream buffer;
  ASSERT_TRUE(nn::SaveParameters(model, buffer).ok());

  nn::Linear wider(5, 3, &rng);
  std::istringstream replay(buffer.str());
  const Status shape = nn::LoadParameters(&wider, replay);
  EXPECT_FALSE(shape.ok());
  EXPECT_EQ(shape.code(), StatusCode::kInvalidArgument);

  std::istringstream garbage("definitely not a checkpoint at all");
  nn::Linear target(4, 3, &rng);
  EXPECT_FALSE(nn::LoadParameters(&target, garbage).ok());
}

TEST_F(SerializeRobustnessTest, AtomicSavePreservesPreviousCheckpoint) {
  if (!fault::Enabled()) GTEST_SKIP() << "fault injection compiled out";
  const std::string path = ::testing::TempDir() + "/atomic.ckpt";
  Rng rng(7);
  nn::Linear first(4, 3, &rng);
  ASSERT_TRUE(nn::SaveParametersToFile(first, path).ok());

  // A failed overwrite (torn write into the temp file) must leave the
  // previous checkpoint byte-identical and loadable. Armed persistently
  // (nth = 0) so the fault defeats every retry attempt, not just the
  // first.
  nn::Linear second(4, 3, &rng);
  fault::ArmFail("serialize.write", 0);
  const Status save = nn::SaveParametersToFile(second, path);
  fault::Disarm("serialize.write");
  EXPECT_FALSE(save.ok());
  EXPECT_EQ(save.code(), StatusCode::kIoError);

  nn::Linear restored(4, 3, &rng);
  ASSERT_TRUE(nn::LoadParametersFromFile(&restored, path).ok());
  ExpectSameValues(first, restored);
  std::remove(path.c_str());
}

TEST_F(SerializeRobustnessTest, TransientTornWriteHealsByRetry) {
  if (!fault::Enabled()) GTEST_SKIP() << "fault injection compiled out";
  const std::string path = ::testing::TempDir() + "/healed.ckpt";
  Rng rng(8);
  nn::Linear model(4, 3, &rng);

  // One transient torn write (fires once, then disarms): the retry layer
  // re-serializes and the save succeeds on a later attempt.
  fault::ArmFail("serialize.write", 1);
  ASSERT_TRUE(nn::SaveParametersToFile(model, path).ok());
  EXPECT_EQ(fault::Fires("serialize.write"), 1);

  nn::Linear restored(4, 3, &rng);
  ASSERT_TRUE(nn::LoadParametersFromFile(&restored, path).ok());
  ExpectSameValues(model, restored);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lead
