// lead_lint end-to-end: every rule fires on its seeded fixture, the
// allow-marker suppresses, clean code passes, and the real source tree
// is lint-clean. Exercised through the real binary (path injected by
// CMake), same pattern as cli_test.
#include <cstdio>
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

namespace {

#ifndef LEAD_LINT_PATH
#define LEAD_LINT_PATH ""
#endif
#ifndef LEAD_LINT_FIXTURE_DIR
#define LEAD_LINT_FIXTURE_DIR ""
#endif
#ifndef LEAD_LINT_SOURCE_DIR
#define LEAD_LINT_SOURCE_DIR ""
#endif

std::string LintPath() { return LEAD_LINT_PATH; }
std::string FixtureDir() { return LEAD_LINT_FIXTURE_DIR; }
std::string SourceDir() { return LEAD_LINT_SOURCE_DIR; }

// Runs a command, captures combined stdout/stderr, returns exit code.
int RunCommand(const std::string& command, std::string* output) {
  output->clear();
  FILE* pipe = popen((command + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return -1;
  char buffer[512];
  while (fgets(buffer, sizeof(buffer), pipe) != nullptr) {
    *output += buffer;
  }
  const int status = pclose(pipe);
  return WEXITSTATUS(status);
}

class LintTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_FALSE(LintPath().empty()) << "LEAD_LINT_PATH not configured";
    ASSERT_FALSE(FixtureDir().empty())
        << "LEAD_LINT_FIXTURE_DIR not configured";
  }

  // Lints one fixture; returns the exit code and fills `output`.
  int LintFixture(const std::string& fixture, std::string* output,
                  const std::string& flags = "") {
    const std::string cmd =
        LintPath() + " " + flags + " " + FixtureDir() + "/" + fixture;
    return RunCommand(cmd, output);
  }

  // A violating fixture must exit 1 and report `rule` at `line` in a
  // machine-readable "file:line rule message" finding.
  void ExpectViolation(const std::string& fixture, const std::string& rule,
                       int line, const std::string& flags = "") {
    std::string out;
    EXPECT_EQ(LintFixture(fixture, &out, flags), 1) << out;
    const std::string expected =
        fixture + ":" + std::to_string(line) + " " + rule + " ";
    EXPECT_NE(out.find(expected), std::string::npos)
        << "expected finding '" << expected << "' in:\n"
        << out;
  }
};

TEST_F(LintTest, EveryRuleFiresOnItsFixture) {
  ExpectViolation("bad_rand.cc", "rand", 4);
  ExpectViolation("bad_raw_rng.cc", "raw-rng", 6);
  ExpectViolation("bad_wall_clock.cc", "wall-clock", 4);
  ExpectViolation("bad_unordered_iter.cc", "unordered-iter", 8);
  ExpectViolation("bad_discarded_status.cc", "discarded-status", 9);
  ExpectViolation("bad_raw_new.cc", "raw-new", 2);
  ExpectViolation("bad_raw_delete.cc", "raw-delete", 2);
  ExpectViolation("bad_float_eq.cc", "float-eq", 3);
  ExpectViolation("bad_matrix_in_kernel.cc", "matrix-in-kernel", 23);
  ExpectViolation("bad_pragma_once.h", "pragma-once", 1);
  ExpectViolation("bad_io_unbounded_loop.cc", "io-unbounded-loop", 9,
                  "--lib");
  ExpectViolation("bad_strategy_chunking.cc", "strategy-chunking", 7,
                  "--lib");
  ExpectViolation("bad_status_path.cc", "status-path", 10);
  ExpectViolation("bad_status_path.cc", "status-path", 16);
  ExpectViolation("bad_lock_scope.cc", "lock-scope", 8, "--lib");
  ExpectViolation("bad_lock_scope.cc", "lock-scope", 10, "--lib");
  ExpectViolation("bad_poll_coverage.cc", "poll-coverage", 9, "--lib");
  ExpectViolation("bad_poll_coverage.cc", "poll-coverage", 12, "--lib");
  ExpectViolation("bad_signal_safety.cc", "signal-safety", 11);
  ExpectViolation("bad_signal_safety.cc", "signal-safety", 12);
  ExpectViolation("bad_signal_safety.cc", "signal-safety", 13);
  ExpectViolation("bad_signal_safety.cc", "signal-safety", 14);
  ExpectViolation("bad_signal_safety.cc", "signal-safety", 15);
}

TEST_F(LintTest, SignalSafetyIsGatedByTheScopeMarkerNotTheLibFlag) {
  std::string out;
  // Atomics-only handler code in a marked file is clean, and a marked
  // file may excuse provably-unreachable setup helpers per line.
  EXPECT_EQ(LintFixture("clean_signal_safety.cc", &out), 0) << out;
  EXPECT_EQ(LintFixture("allowed_signal_safety.cc", &out), 0) << out;
  // The same unsafe constructs pass without the marker: the rule follows
  // the file's declaration, not a path- or flag-based gate...
  EXPECT_EQ(LintFixture("unmarked_signal_safety.cc", &out), 0) << out;
  EXPECT_EQ(LintFixture("unmarked_signal_safety.cc", &out, "--lib"), 0)
      << out;
  // ...so the bad fixture fires even without --lib.
  EXPECT_EQ(LintFixture("bad_signal_safety.cc", &out), 1) << out;
}

TEST_F(LintTest, NewRulesStayQuietOnCleanAndAllowedFixtures) {
  std::string out;
  EXPECT_EQ(LintFixture("clean_status_path.cc", &out), 0) << out;
  EXPECT_EQ(LintFixture("allowed_status_path.cc", &out), 0) << out;
  EXPECT_EQ(LintFixture("clean_lock_scope.cc", &out, "--lib"), 0) << out;
  EXPECT_EQ(LintFixture("allowed_lock_scope.cc", &out, "--lib"), 0) << out;
  EXPECT_EQ(LintFixture("clean_poll_coverage.cc", &out, "--lib"), 0) << out;
  EXPECT_EQ(LintFixture("allowed_poll_coverage.cc", &out, "--lib"), 0) << out;
  // lock-scope and poll-coverage are gated to library/core code: the bad
  // fixtures pass when linted as tool/test code (no --lib).
  EXPECT_EQ(LintFixture("bad_lock_scope.cc", &out), 0) << out;
  EXPECT_EQ(LintFixture("bad_poll_coverage.cc", &out), 0) << out;
}

TEST_F(LintTest, JsonOutputReportsFindings) {
  std::string out;
  EXPECT_EQ(LintFixture("bad_status_path.cc", &out, "--json"), 1);
  EXPECT_NE(out.find("\"violations\": ["), std::string::npos) << out;
  EXPECT_NE(out.find("\"rule\": \"status-path\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"line\": 10"), std::string::npos) << out;
  EXPECT_EQ(LintFixture("clean.cc", &out, "--json"), 0);
  EXPECT_NE(out.find("\"violations\": []"), std::string::npos) << out;
}

TEST_F(LintTest, ReportAllowsFlagsDeadMarkers) {
  std::string out;
  // Markers that actually suppress findings are not reported...
  EXPECT_EQ(LintFixture("allowed_status_path.cc", &out, "--report-allows"), 0)
      << out;
  // ...but a marker that suppresses nothing fails the run; without the
  // flag the stale marker is tolerated.
  EXPECT_EQ(LintFixture("dead_allow.cc", &out), 0) << out;
  EXPECT_EQ(LintFixture("dead_allow.cc", &out, "--report-allows"), 1) << out;
  EXPECT_NE(out.find("dead_allow.cc:5 dead-allow allow(raw-new)"),
            std::string::npos)
      << out;
  // JSON mode carries the same report.
  EXPECT_EQ(LintFixture("dead_allow.cc", &out, "--report-allows --json"), 1)
      << out;
  EXPECT_NE(out.find("\"dead_allows\": ["), std::string::npos) << out;
}

TEST_F(LintTest, StrategyChunkingSparesDerivedGrainsAndAllowedLines) {
  // Only the hardcoded-constant call (line 7) fires; the DynamicChunk
  // call, the variable grain, and the allow-marked literal stay quiet —
  // and like the other lib rules, the gate is off without --lib.
  std::string out;
  EXPECT_EQ(LintFixture("bad_strategy_chunking.cc", &out, "--lib"), 1);
  EXPECT_NE(out.find(":7 strategy-chunking"), std::string::npos) << out;
  EXPECT_EQ(out.find(":11 "), std::string::npos) << out;
  EXPECT_EQ(out.find(":16 "), std::string::npos) << out;
  EXPECT_EQ(out.find(":21 "), std::string::npos) << out;
  EXPECT_EQ(LintFixture("bad_strategy_chunking.cc", &out), 0) << out;
}

TEST_F(LintTest, IoUnboundedLoopSparesPolledAndAllowedLoops) {
  // Both unpolled reader loops fire; the polled loop (line 31) and the
  // allow-marked bounded split loop (line 41) stay quiet. Like the
  // lib-only rules, the io gate is off without --lib.
  std::string out;
  EXPECT_EQ(LintFixture("bad_io_unbounded_loop.cc", &out, "--lib"), 1);
  EXPECT_NE(out.find(":9 io-unbounded-loop"), std::string::npos) << out;
  EXPECT_NE(out.find(":19 io-unbounded-loop"), std::string::npos) << out;
  EXPECT_EQ(out.find(":31 "), std::string::npos) << out;
  EXPECT_EQ(out.find(":41 "), std::string::npos) << out;
  EXPECT_EQ(LintFixture("bad_io_unbounded_loop.cc", &out), 0) << out;
}

TEST_F(LintTest, MatrixInKernelSparesNonKernelsAndAllowedLines) {
  // The fixture's allow-marked kernel (line 28) and its plain helper
  // (line 35) must not be reported; only the bare kernel temp is.
  std::string out;
  EXPECT_EQ(LintFixture("bad_matrix_in_kernel.cc", &out), 1);
  EXPECT_EQ(out.find(":28 "), std::string::npos) << out;
  EXPECT_EQ(out.find(":35 "), std::string::npos) << out;
}

TEST_F(LintTest, LibOnlyRulesNeedTheLibFlag) {
  ExpectViolation("bad_cout_in_lib.cc", "cout-in-lib", 5, "--lib");
  ExpectViolation("bad_exit_in_lib.cc", "exit-in-lib", 5, "--lib");
  ExpectViolation("bad_stderr_in_lib.cc", "stderr", 6, "--lib");
  ExpectViolation("bad_stderr_in_lib.cc", "stderr", 7, "--lib");
  // Without --lib the same files are treated as tool/test code and pass.
  std::string out;
  EXPECT_EQ(LintFixture("bad_cout_in_lib.cc", &out), 0) << out;
  EXPECT_EQ(LintFixture("bad_exit_in_lib.cc", &out), 0) << out;
  EXPECT_EQ(LintFixture("bad_stderr_in_lib.cc", &out), 0) << out;
}

TEST_F(LintTest, AllowMarkerSuppressesFindings) {
  std::string out;
  EXPECT_EQ(LintFixture("allowed.cc", &out), 0) << out;
}

TEST_F(LintTest, CleanFixturePasses) {
  std::string out;
  EXPECT_EQ(LintFixture("clean.cc", &out), 0) << out;
}

TEST_F(LintTest, ListRulesCoversEveryRule) {
  std::string out;
  ASSERT_EQ(RunCommand(LintPath() + " --list-rules", &out), 0) << out;
  for (const char* rule :
       {"rand", "raw-rng", "wall-clock", "unordered-iter",
        "discarded-status", "raw-new", "raw-delete", "float-eq",
        "matrix-in-kernel", "cout-in-lib", "exit-in-lib", "stderr",
        "pragma-once", "io-unbounded-loop", "strategy-chunking",
        "status-path", "lock-scope", "poll-coverage", "signal-safety"}) {
    EXPECT_NE(out.find(rule), std::string::npos) << "missing rule " << rule;
  }
}

TEST_F(LintTest, RealSourceTreeIsClean) {
  ASSERT_FALSE(SourceDir().empty()) << "LEAD_LINT_SOURCE_DIR not configured";
  std::string out;
  // --report-allows keeps the suppression inventory honest: a marker
  // whose finding was fixed must be removed with it.
  const std::string cmd = "cd " + SourceDir() + " && " + LintPath() +
                          " --report-allows src tests bench cli tools";
  EXPECT_EQ(RunCommand(cmd, &out), 0) << out;
}

}  // namespace
