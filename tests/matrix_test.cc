// Unit tests for the Matrix type and raw GEMM kernels.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/matrix.h"

namespace lead::nn {
namespace {

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.size(), 6);
  m.at(1, 2) = 5.0f;
  EXPECT_FLOAT_EQ(m.at(1, 2), 5.0f);
  EXPECT_FLOAT_EQ(m.at(0, 0), 0.0f);
}

TEST(MatrixTest, RowVectorAndFull) {
  const Matrix v = Matrix::RowVector({1, 2, 3});
  EXPECT_EQ(v.rows(), 1);
  EXPECT_EQ(v.cols(), 3);
  const Matrix f = Matrix::Full(2, 2, 7.0f);
  EXPECT_FLOAT_EQ(f.at(1, 1), 7.0f);
}

TEST(MatrixTest, UniformRespectsBound) {
  Rng rng(1);
  const Matrix m = Matrix::Uniform(10, 10, 0.5f, &rng);
  for (int i = 0; i < m.size(); ++i) {
    EXPECT_LE(std::fabs(m.data()[i]), 0.5f);
  }
}

TEST(MatrixTest, SameShape) {
  EXPECT_TRUE(Matrix(2, 3).SameShape(Matrix(2, 3)));
  EXPECT_FALSE(Matrix(2, 3).SameShape(Matrix(3, 2)));
}

// Reference naive GEMM used to validate the kernels.
Matrix NaiveMatMul(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < b.cols(); ++j) {
      float dot = 0.0f;
      for (int k = 0; k < a.cols(); ++k) dot += a.at(i, k) * b.at(k, j);
      out.at(i, j) = dot;
    }
  }
  return out;
}

class GemmSweep : public ::testing::TestWithParam<std::tuple<int, int, int>> {
};

TEST_P(GemmSweep, AllThreeKernelsMatchNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng(42 + m * 100 + k * 10 + n);
  const Matrix a = Matrix::Uniform(m, k, 1.0f, &rng);
  const Matrix b = Matrix::Uniform(k, n, 1.0f, &rng);
  const Matrix expected = NaiveMatMul(a, b);

  Matrix out(m, n);
  MatMulAccumulate(a, b, &out);
  for (int i = 0; i < out.size(); ++i) {
    EXPECT_NEAR(out.data()[i], expected.data()[i], 1e-4);
  }

  // a^T path: build a_t with shape [k x m] so a_t^T * b == expected.
  Matrix a_t(k, m);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < k; ++j) a_t.at(j, i) = a.at(i, j);
  }
  Matrix out_ta(m, n);
  MatMulTransposeAAccumulate(a_t, b, &out_ta);
  for (int i = 0; i < out_ta.size(); ++i) {
    EXPECT_NEAR(out_ta.data()[i], expected.data()[i], 1e-4);
  }

  // b^T path: build b_t with shape [n x k].
  Matrix b_t(n, k);
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < n; ++j) b_t.at(j, i) = b.at(i, j);
  }
  Matrix out_tb(m, n);
  MatMulTransposeBAccumulate(a, b_t, &out_tb);
  for (int i = 0; i < out_tb.size(); ++i) {
    EXPECT_NEAR(out_tb.data()[i], expected.data()[i], 1e-4);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmSweep,
    ::testing::Values(std::tuple<int, int, int>{1, 1, 1},
                      std::tuple<int, int, int>{1, 8, 4},
                      std::tuple<int, int, int>{4, 1, 8},
                      std::tuple<int, int, int>{3, 5, 7},
                      std::tuple<int, int, int>{16, 16, 16},
                      std::tuple<int, int, int>{7, 32, 13}));

TEST(GemmTest, AccumulatesIntoExistingOutput) {
  Rng rng(9);
  const Matrix a = Matrix::Uniform(2, 2, 1.0f, &rng);
  const Matrix b = Matrix::Uniform(2, 2, 1.0f, &rng);
  Matrix out = Matrix::Full(2, 2, 10.0f);
  MatMulAccumulate(a, b, &out);
  const Matrix fresh = NaiveMatMul(a, b);
  for (int i = 0; i < out.size(); ++i) {
    EXPECT_NEAR(out.data()[i], 10.0f + fresh.data()[i], 1e-4);
  }
}

}  // namespace
}  // namespace lead::nn
