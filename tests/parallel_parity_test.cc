// Serial-parity tests for the multi-core execution layer: every
// user-visible output (Preprocess features, Detect probabilities, trained
// weights) must be bit-identical for every thread count, the thread pool's
// block partition must be deterministic, and the resilience harness
// (sentinel rollback) must keep working under parallel training.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/lead.h"
#include "eval/harness.h"
#include "obs/trace.h"

namespace lead {
namespace {

const int kThreadCounts[] = {1, 2, 4, 7};

// One small corpus for the whole binary (building it is the slow part).
class ParallelParityTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    eval::ExperimentConfig config = eval::DefaultConfig(1.0);
    config.world.num_background_pois = 1500;
    config.world.num_loading_facilities = 8;
    config.world.num_unloading_facilities = 12;
    config.world.num_rest_areas = 12;
    config.world.num_depots = 6;
    config.dataset.num_trajectories = 40;
    config.dataset.num_trucks = 20;
    config.sim.sample_interval_mean_s = 240.0;
    config.lead.train.max_candidates_per_trajectory = 4;
    // A large mini-batch makes every chunk span multiple gradient shards,
    // so the fixed-order tree reduction actually reduces.
    config.lead.train.batch_size = 64;
    config.lead.train.learning_rate = 1e-3f;
    config_ = std::make_unique<eval::ExperimentConfig>(config);
    auto data = eval::BuildExperiment(config);
    ASSERT_TRUE(data.ok()) << data.status();
    data_ = std::make_unique<eval::ExperimentData>(std::move(data).value());
  }
  static void TearDownTestSuite() {
    data_.reset();
    config_.reset();
  }
  void TearDown() override { fault::DisarmAll(); }

  static core::LeadOptions OptionsWithThreads(int threads, int ae_epochs,
                                              int det_epochs) {
    core::LeadOptions options = config_->lead;
    options.train.autoencoder_epochs = ae_epochs;
    options.train.detector_epochs = det_epochs;
    options.train.threads = threads;
    options.detect.threads = threads;
    return options;
  }

  // Trains a model with the given thread count (0 epochs = fit the
  // normalizer only; weights stay at their seeded init).
  static std::unique_ptr<core::LeadModel> TrainedModel(int threads,
                                                       int ae_epochs,
                                                       int det_epochs) {
    auto model = std::make_unique<core::LeadModel>(
        OptionsWithThreads(threads, ae_epochs, det_epochs));
    const Status status =
        model->Train(data_->TrainLabeled(), data_->ValLabeled(),
                     data_->world->poi_index(), nullptr);
    EXPECT_TRUE(status.ok()) << status;
    return model;
  }

  static std::unique_ptr<eval::ExperimentConfig> config_;
  static std::unique_ptr<eval::ExperimentData> data_;
};

std::unique_ptr<eval::ExperimentConfig> ParallelParityTest::config_;
std::unique_ptr<eval::ExperimentData> ParallelParityTest::data_;

bool SameBytes(const nn::Matrix& a, const nn::Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(),
                     sizeof(float) * static_cast<size_t>(a.size())) == 0;
}

std::string FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

TEST_F(ParallelParityTest, ThreadPoolPartitionIsDeterministicAndComplete) {
  ThreadPool& pool = ThreadPool::Global();
  ASSERT_GE(pool.num_workers(), 7) << "parity tests need real cross-thread "
                                      "execution even on small machines";
  for (const int lanes : {1, 2, 4, 7, 8, 13}) {
    for (const int64_t n : {0, 1, 5, 64, 1000}) {
      std::vector<int> touched(static_cast<size_t>(n), 0);
      pool.ParallelFor(n, lanes, [&](int64_t i) { ++touched[i]; });
      for (int64_t i = 0; i < n; ++i) {
        ASSERT_EQ(touched[i], 1) << "n=" << n << " lanes=" << lanes
                                 << " index " << i;
      }
      // The block partition is a function of (n, lanes) alone.
      std::vector<std::pair<int64_t, int64_t>> blocks(
          static_cast<size_t>(std::max<int64_t>(
              1, std::min<int64_t>(n, lanes))));
      pool.ParallelForBlocks(n, lanes,
                             [&](int64_t begin, int64_t end, int lane) {
                               blocks[lane] = {begin, end};
                             });
      int64_t expect_begin = 0;
      for (size_t b = 0; b < blocks.size(); ++b) {
        EXPECT_EQ(blocks[b].first, expect_begin);
        expect_begin = blocks[b].second;
      }
      if (n > 0) {
        EXPECT_EQ(expect_begin, n);
      }
    }
  }
  // Nested ParallelFor runs inline instead of deadlocking on the pool.
  std::vector<int> nested(64, 0);
  pool.ParallelFor(8, 8, [&](int64_t outer) {
    pool.ParallelFor(8, 8,
                     [&](int64_t inner) { ++nested[outer * 8 + inner]; });
  });
  for (int i = 0; i < 64; ++i) EXPECT_EQ(nested[i], 1);
}

TEST_F(ParallelParityTest, RngForStreamIgnoresDrawOrder) {
  // The stream for (seed, index) must not depend on draws made elsewhere.
  Rng a = Rng::ForStream(42, 7);
  Rng burn = Rng::ForStream(42, 3);
  for (int i = 0; i < 100; ++i) burn.Uniform(0.0, 1.0);
  Rng b = Rng::ForStream(42, 7);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(a.engine()(), b.engine()());
  }
  // Distinct indices and seeds give distinct streams.
  EXPECT_NE(Rng::ForStream(42, 7).engine()(),
            Rng::ForStream(42, 8).engine()());
  EXPECT_NE(Rng::ForStream(42, 7).engine()(),
            Rng::ForStream(43, 7).engine()());
}

TEST_F(ParallelParityTest, PreprocessIsBitIdenticalAcrossThreadCounts) {
  const auto reference = TrainedModel(/*threads=*/1, 0, 0);
  for (const int threads : kThreadCounts) {
    if (threads == 1) continue;
    const auto model = TrainedModel(threads, 0, 0);
    for (const sim::SimulatedDay& day : data_->split.test) {
      auto a = reference->Preprocess(day.raw, data_->world->poi_index());
      auto b = model->Preprocess(day.raw, data_->world->poi_index());
      ASSERT_TRUE(a.ok()) << a.status();
      ASSERT_TRUE(b.ok()) << b.status();
      EXPECT_EQ(a->num_stays(), b->num_stays());
      ASSERT_EQ(a->candidates.size(), b->candidates.size());
      for (size_t i = 0; i < a->candidates.size(); ++i) {
        EXPECT_EQ(a->candidates[i], b->candidates[i]);
      }
      EXPECT_TRUE(SameBytes(a->features, b->features))
          << day.raw.trajectory_id << " with " << threads << " threads";
    }
  }
}

TEST_F(ParallelParityTest, DetectIsBitIdenticalAcrossThreadCounts) {
  const auto reference = TrainedModel(/*threads=*/1, 0, 0);
  for (const int threads : kThreadCounts) {
    if (threads == 1) continue;
    const auto model = TrainedModel(threads, 0, 0);
    int compared = 0;
    for (const sim::SimulatedDay& day : data_->split.test) {
      auto a = reference->Detect(day.raw, data_->world->poi_index());
      auto b = model->Detect(day.raw, data_->world->poi_index());
      ASSERT_EQ(a.ok(), b.ok());
      if (!a.ok()) continue;
      EXPECT_EQ(a->loaded, b->loaded);
      ASSERT_EQ(a->probabilities.size(), b->probabilities.size());
      for (size_t i = 0; i < a->probabilities.size(); ++i) {
        // Bitwise float equality, deliberately.
        EXPECT_EQ(a->probabilities[i], b->probabilities[i])
            << day.raw.trajectory_id << " candidate " << i << " with "
            << threads << " threads";
      }
      ++compared;
    }
    EXPECT_GT(compared, 0);
  }
}

TEST_F(ParallelParityTest, DetectWithTracingEnabledIsBitIdentical) {
  // Observability must never feed back into the computation: detect with
  // the tracer recording has to produce the same bits as detect with it
  // off, for serial and parallel runs alike.
  const auto model = TrainedModel(/*threads=*/1, 0, 0);
  std::vector<std::vector<float>> baseline;
  for (const sim::SimulatedDay& day : data_->split.test) {
    auto result = model->Detect(day.raw, data_->world->poi_index());
    baseline.push_back(result.ok() ? result->probabilities
                                   : std::vector<float>());
  }
  for (const int threads : {1, 4}) {
    auto traced = TrainedModel(threads, 0, 0);
    obs::Tracer::Global().Start();
    std::vector<std::vector<float>> probabilities;
    for (const sim::SimulatedDay& day : data_->split.test) {
      auto result = traced->Detect(day.raw, data_->world->poi_index());
      probabilities.push_back(result.ok() ? result->probabilities
                                          : std::vector<float>());
    }
    obs::Tracer::Global().Stop();
    EXPECT_GT(obs::Tracer::Global().EventCount(), 0u)
        << "tracing was on; detect spans must have been recorded";
    ASSERT_EQ(probabilities.size(), baseline.size());
    for (size_t d = 0; d < baseline.size(); ++d) {
      ASSERT_EQ(probabilities[d].size(), baseline[d].size());
      for (size_t i = 0; i < baseline[d].size(); ++i) {
        // Bitwise float equality, deliberately.
        EXPECT_EQ(probabilities[d][i], baseline[d][i])
            << "day " << d << " candidate " << i << " with " << threads
            << " threads and tracing enabled";
      }
    }
  }
}

TEST_F(ParallelParityTest, OneEpochTrainingIsBitIdenticalAcrossThreadCounts) {
  const std::string dir = ::testing::TempDir() + "/parallel_parity";
  std::filesystem::create_directories(dir);
  const auto reference = TrainedModel(/*threads=*/1, 1, 1);
  const std::string ref_path = dir + "/model_t1.bin";
  ASSERT_TRUE(reference->Save(ref_path).ok());
  const std::string ref_bytes = FileBytes(ref_path);
  ASSERT_FALSE(ref_bytes.empty());
  for (const int threads : kThreadCounts) {
    if (threads == 1) continue;
    const auto model = TrainedModel(threads, 1, 1);
    const std::string path =
        dir + "/model_t" + std::to_string(threads) + ".bin";
    ASSERT_TRUE(model->Save(path).ok());
    // The serialized model (normalizer moments + every weight of every
    // module) must match the serial run byte for byte.
    EXPECT_EQ(FileBytes(path), ref_bytes)
        << "training with " << threads
        << " threads produced different weights";
    std::remove(path.c_str());
  }
  std::remove(ref_path.c_str());
}

TEST_F(ParallelParityTest, RollbackConvergesUnderParallelTraining) {
  if (!fault::Enabled()) GTEST_SKIP() << "fault injection compiled out";
#ifdef LEAD_CHECK_SHAPES
  // This test deliberately injects a non-finite gradient; under
  // LEAD_CHECK_SHAPES the first-NaN-origin contract aborts before the
  // sentinel can observe and roll back, which is the contract working as
  // intended — the recovery path is covered by the non-contract builds.
  GTEST_SKIP() << "NaN injection conflicts with first-NaN-origin contracts";
#endif
  // Poison a gradient a few optimizer steps in while training with
  // threads > 1: the sentinel must roll back, back off the LR, and finish
  // training with finite weights — same contract as the serial path.
  fault::ArmNonFinite("adam.grad", /*nth=*/3);
  core::LeadOptions options = OptionsWithThreads(/*threads=*/4, 2, 2);
  core::LeadModel model(options);
  core::TrainingLog log;
  const Status status =
      model.Train(data_->TrainLabeled(), data_->ValLabeled(),
                  data_->world->poi_index(), &log);
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_EQ(fault::Fires("adam.grad"), 1);
  ASSERT_FALSE(log.recoveries.empty());
  EXPECT_LT(log.recoveries[0].lr_scale, 1.0f);
  auto detection =
      model.Detect(data_->split.test[0].raw, data_->world->poi_index());
  ASSERT_TRUE(detection.ok()) << detection.status();
  for (float p : detection->probabilities) EXPECT_TRUE(std::isfinite(p));
}

TEST_F(ParallelParityTest, CheckpointResumeWorksWithParallelTraining) {
  if (!fault::Enabled()) GTEST_SKIP() << "fault injection compiled out";
  const std::string dir = ::testing::TempDir() + "/parallel_resume_ckpt";
  std::filesystem::remove_all(dir);
  core::LeadOptions options = OptionsWithThreads(/*threads=*/4, 2, 2);
  options.train.checkpoint_dir = dir;
  {
    fault::ArmFail("train.epoch", /*nth=*/2);
    core::LeadModel model(options);
    const Status status =
        model.Train(data_->TrainLabeled(), data_->ValLabeled(),
                    data_->world->poi_index(), nullptr);
    ASSERT_FALSE(status.ok());
  }
  fault::DisarmAll();
  ASSERT_TRUE(std::filesystem::exists(dir + "/lead_train.ckpt"));
  core::LeadModel model(options);
  core::TrainingLog log;
  const Status status =
      model.Train(data_->TrainLabeled(), data_->ValLabeled(),
                  data_->world->poi_index(), &log);
  ASSERT_TRUE(status.ok()) << status;
  ASSERT_FALSE(log.recoveries.empty());
  EXPECT_NE(log.recoveries[0].reason.find("resumed from checkpoint"),
            std::string::npos);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace lead
