// Tests for the hierarchical autoencoder and the detectors.
#include <gtest/gtest.h>

#include "core/autoencoder.h"
#include "core/detector.h"
#include "gradcheck.h"
#include "nn/adam.h"
#include "nn/ops.h"

namespace lead::core {
namespace {

constexpr geo::LatLng kOrigin{32.0, 120.9};

// Builds a small processed trajectory with `n` stays directly (bypassing
// the pipeline) so autoencoder tests stay fast and deterministic.
ProcessedTrajectory TinyProcessed(int num_stays, int stay_len, int move_len,
                                  uint64_t seed) {
  ProcessedTrajectory pt;
  Rng rng(seed);
  int index = 0;
  int64_t time = 1'600'000'000;
  auto push_points = [&](int count) {
    traj::IndexRange range{index, index + count - 1};
    for (int i = 0; i < count; ++i) {
      pt.cleaned.points.push_back(
          {geo::OffsetMeters(kOrigin, rng.Uniform(-50, 50),
                             rng.Uniform(-50, 50)),
           time});
      time += 120;
      ++index;
    }
    return range;
  };
  for (int s = 0; s < num_stays; ++s) {
    if (s > 0 && move_len > 0) {
      traj::MoveSegment move;
      move.has_points = true;
      move.range = push_points(move_len);
      pt.segmentation.moves.push_back(move);
    } else if (s > 0) {
      pt.segmentation.moves.push_back(traj::MoveSegment{});
    } else {
      pt.segmentation.moves.push_back(traj::MoveSegment{});  // move[0]
    }
    traj::StayPoint sp;
    sp.range = push_points(stay_len);
    pt.segmentation.stays.push_back(sp);
  }
  pt.segmentation.moves.push_back(traj::MoveSegment{});  // move[n]
  pt.candidates = traj::GenerateCandidates(num_stays);
  // Random normalized-looking features.
  pt.features = nn::Matrix(index, kFeatureDims);
  for (int i = 0; i < pt.features.size(); ++i) {
    pt.features.data()[i] = static_cast<float>(rng.Gaussian(0.0, 0.6));
  }
  return pt;
}

AutoencoderOptions SmallAeOptions(bool attention = true,
                                  bool hierarchical = true) {
  AutoencoderOptions options;
  options.hidden = 8;
  options.use_attention = attention;
  options.hierarchical = hierarchical;
  return options;
}

TEST(AutoencoderTest, CvecHasExpectedShape) {
  Rng rng(1);
  HierarchicalAutoencoder ae(SmallAeOptions(), &rng);
  const ProcessedTrajectory pt = TinyProcessed(4, 4, 3, 7);
  const nn::Variable cvec = ae.EncodeCandidate(pt, {0, 2});
  EXPECT_EQ(cvec.rows(), 1);
  EXPECT_EQ(cvec.cols(), ae.cvec_dims());
  EXPECT_EQ(ae.cvec_dims(), 16);
}

TEST(AutoencoderTest, SharedSegmentEncodingMatchesNaive) {
  Rng rng(2);
  HierarchicalAutoencoder ae(SmallAeOptions(), &rng);
  const ProcessedTrajectory pt = TinyProcessed(5, 4, 3, 8);
  nn::NoGradGuard no_grad;
  const TrajectoryEncoding enc = ae.EncodeSegments(pt);
  for (const traj::Candidate& c : pt.candidates) {
    const nn::Variable shared = ae.EncodeCandidateFromSegments(enc, c);
    const nn::Variable naive = ae.EncodeCandidate(pt, c);
    ASSERT_EQ(shared.cols(), naive.cols());
    for (int i = 0; i < shared.cols(); ++i) {
      EXPECT_NEAR(shared.value().at(0, i), naive.value().at(0, i), 1e-5)
          << "candidate (" << c.start_sp << "," << c.end_sp << ") dim " << i;
    }
  }
}

TEST(AutoencoderTest, ReconstructionLossIsFiniteAndPositive) {
  Rng rng(3);
  HierarchicalAutoencoder ae(SmallAeOptions(), &rng);
  const ProcessedTrajectory pt = TinyProcessed(3, 4, 3, 9);
  const nn::Variable loss = ae.ReconstructionLoss(pt, {0, 2});
  EXPECT_TRUE(std::isfinite(loss.value().at(0, 0)));
  EXPECT_GT(loss.value().at(0, 0), 0.0f);
}

TEST(AutoencoderTest, HandlesEmptyMoveSlots) {
  Rng rng(4);
  HierarchicalAutoencoder ae(SmallAeOptions(), &rng);
  // move_len = 0: all interior moves empty.
  const ProcessedTrajectory pt = TinyProcessed(3, 4, 0, 10);
  const nn::Variable cvec = ae.EncodeCandidate(pt, {0, 2});
  EXPECT_EQ(cvec.cols(), 16);
  const nn::Variable loss = ae.ReconstructionLoss(pt, {0, 2});
  EXPECT_TRUE(std::isfinite(loss.value().at(0, 0)));
}

TEST(AutoencoderTest, GradCheckHierarchical) {
  Rng rng(5);
  HierarchicalAutoencoder ae(SmallAeOptions(), &rng);
  const ProcessedTrajectory pt = TinyProcessed(3, 3, 2, 11);
  lead::testing::ExpectGradientsMatch(
      &ae, [&] { return ae.ReconstructionLoss(pt, {0, 2}); },
      /*checks_per_param=*/2);
}

TEST(AutoencoderTest, GradCheckFlatVariant) {
  Rng rng(6);
  HierarchicalAutoencoder ae(SmallAeOptions(true, /*hierarchical=*/false),
                             &rng);
  const ProcessedTrajectory pt = TinyProcessed(3, 3, 2, 12);
  lead::testing::ExpectGradientsMatch(
      &ae, [&] { return ae.ReconstructionLoss(pt, {0, 2}); },
      /*checks_per_param=*/2);
}

TEST(AutoencoderTest, GradCheckNoAttentionVariant) {
  Rng rng(7);
  HierarchicalAutoencoder ae(SmallAeOptions(/*attention=*/false), &rng);
  const ProcessedTrajectory pt = TinyProcessed(3, 3, 2, 13);
  lead::testing::ExpectGradientsMatch(
      &ae, [&] { return ae.ReconstructionLoss(pt, {0, 2}); },
      /*checks_per_param=*/2);
}

TEST(AutoencoderTest, TrainingReducesReconstructionLoss) {
  Rng rng(8);
  HierarchicalAutoencoder ae(SmallAeOptions(), &rng);
  ProcessedTrajectory pt = TinyProcessed(4, 4, 3, 14);
  // Structured (compressible) features: smooth per-dimension waves.
  for (int r = 0; r < pt.features.rows(); ++r) {
    for (int c = 0; c < pt.features.cols(); ++c) {
      const auto fr = static_cast<float>(r);
      const auto fc = static_cast<float>(c);
      pt.features.at(r, c) =
          0.5f * std::sin(0.3f * fr + 0.8f * fc) + 0.1f * fc / 32.0f;
    }
  }
  nn::Adam adam(ae.Parameters(), {.learning_rate = 3e-3f});
  float first = 0.0f;
  float last = 0.0f;
  for (int step = 0; step < 60; ++step) {
    float total = 0.0f;
    for (const traj::Candidate& c : pt.candidates) {
      const nn::Variable loss = ae.ReconstructionLoss(pt, c);
      total += loss.value().at(0, 0);
      nn::Backward(loss);
    }
    adam.StepAndZeroGrad();
    if (step == 0) first = total;
    last = total;
  }
  EXPECT_LT(last, first * 0.8f);
}

TEST(AutoencoderTest, VariantsProduceDifferentParameterCounts) {
  Rng rng(9);
  HierarchicalAutoencoder full(SmallAeOptions(), &rng);
  HierarchicalAutoencoder no_sel(SmallAeOptions(/*attention=*/false), &rng);
  HierarchicalAutoencoder no_hie(
      SmallAeOptions(true, /*hierarchical=*/false), &rng);
  EXPECT_GT(full.NumParameters(), no_sel.NumParameters());
  EXPECT_GT(full.NumParameters(), no_hie.NumParameters());
}

// ---- Detectors. ----

TEST(DetectorTest, GroupDistributionSumsToOne) {
  Rng rng(10);
  DetectorOptions options;
  options.input_dims = 16;
  options.hidden = 8;
  options.num_layers = 2;
  StackedBiLstmDetector detector(options, &rng);
  // Three subgroups of sizes 3, 2, 1 -> a distribution over 6 candidates.
  const std::vector<nn::Variable> subgroups = {
      nn::Variable::Constant(nn::Matrix::Uniform(3, 16, 1.0f, &rng)),
      nn::Variable::Constant(nn::Matrix::Uniform(2, 16, 1.0f, &rng)),
      nn::Variable::Constant(nn::Matrix::Uniform(1, 16, 1.0f, &rng)),
  };
  const nn::Variable probs = detector.ForwardGroup(subgroups);
  EXPECT_EQ(probs.rows(), 1);
  EXPECT_EQ(probs.cols(), 6);
  float sum = 0.0f;
  for (int i = 0; i < 6; ++i) {
    const float p = probs.value().at(0, i);
    EXPECT_GE(p, 0.0f);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0f, 1e-5);
}

TEST(DetectorTest, SingleMemberSubgroupIsNotDegenerate) {
  // With the global softmax, a single-member subgroup competes with all
  // other candidates instead of receiving probability 1.
  Rng rng(11);
  DetectorOptions options;
  options.input_dims = 16;
  options.hidden = 8;
  options.num_layers = 1;
  StackedBiLstmDetector detector(options, &rng);
  const std::vector<nn::Variable> subgroups = {
      nn::Variable::Constant(nn::Matrix::Uniform(4, 16, 1.0f, &rng)),
      nn::Variable::Constant(nn::Matrix::Uniform(1, 16, 1.0f, &rng)),
  };
  const nn::Variable probs = detector.ForwardGroup(subgroups);
  EXPECT_LT(probs.value().at(0, 4), 0.9f);
}

TEST(DetectorTest, ScoreSubgroupShape) {
  Rng rng(13);
  DetectorOptions options;
  options.input_dims = 16;
  options.hidden = 8;
  options.num_layers = 2;
  StackedBiLstmDetector detector(options, &rng);
  const nn::Variable subgroup =
      nn::Variable::Constant(nn::Matrix::Uniform(5, 16, 1.0f, &rng));
  const nn::Variable scores = detector.ScoreSubgroup(subgroup);
  EXPECT_EQ(scores.rows(), 1);
  EXPECT_EQ(scores.cols(), 5);
}

TEST(DetectorTest, GradCheck) {
  Rng rng(12);
  DetectorOptions options;
  options.input_dims = 8;
  options.hidden = 6;
  options.num_layers = 2;
  StackedBiLstmDetector detector(options, &rng);
  const std::vector<nn::Variable> subgroups = {
      nn::Variable::Constant(nn::Matrix::Uniform(3, 8, 1.0f, &rng)),
      nn::Variable::Constant(nn::Matrix::Uniform(1, 8, 1.0f, &rng)),
  };
  const nn::Variable label = nn::Variable::Constant(
      nn::Matrix::RowVector({0.7f, 0.1f, 0.1f, 0.1f}));
  lead::testing::ExpectGradientsMatch(
      &detector,
      [&] {
        return nn::KlDivergence(label, detector.ForwardGroup(subgroups));
      },
      /*checks_per_param=*/2);
}

TEST(MlpScorerTest, OutputsProbabilitiesPerRow) {
  Rng rng(13);
  MlpScorer scorer(16, &rng);
  const nn::Variable cvecs =
      nn::Variable::Constant(nn::Matrix::Uniform(6, 16, 1.0f, &rng));
  const nn::Variable probs = scorer.Forward(cvecs);
  EXPECT_EQ(probs.rows(), 6);
  EXPECT_EQ(probs.cols(), 1);
  for (int i = 0; i < 6; ++i) {
    EXPECT_GT(probs.value().at(i, 0), 0.0f);
    EXPECT_LT(probs.value().at(i, 0), 1.0f);
  }
}

TEST(MlpScorerTest, CanOverfitOneSample) {
  Rng rng(14);
  MlpScorer scorer(8, &rng);
  const nn::Variable cvecs =
      nn::Variable::Constant(nn::Matrix::Uniform(3, 8, 1.0f, &rng));
  nn::Matrix target(3, 1);
  target.at(1, 0) = 1.0f;
  const nn::Variable y = nn::Variable::Constant(target);
  nn::Adam adam(scorer.Parameters(), {.learning_rate = 1e-2f});
  for (int i = 0; i < 300; ++i) {
    const nn::Variable probs = scorer.Forward(cvecs);
    nn::Backward(nn::MseLoss(probs, y));
    adam.StepAndZeroGrad();
  }
  const nn::Variable probs = scorer.Forward(cvecs);
  EXPECT_GT(probs.value().at(1, 0), 0.8f);
  EXPECT_LT(probs.value().at(0, 0), 0.2f);
}

}  // namespace
}  // namespace lead::core
