// Central-difference gradient checking utilities for nn tests.
#pragma once

#include <cmath>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/module.h"
#include "nn/variable.h"

namespace lead::testing {

// Verifies the analytic gradients of `loss_fn` (a scalar-valued graph
// builder over `module`'s parameters) against central differences on a
// random sample of parameter entries.
inline void ExpectGradientsMatch(nn::Module* module,
                                 const std::function<nn::Variable()>& loss_fn,
                                 int checks_per_param = 4,
                                 float step = 5e-3f, float rtol = 8e-2f,
                                 float atol = 2e-4f) {
  module->ZeroGrad();
  const nn::Variable loss = loss_fn();
  nn::Backward(loss);

  Rng rng(12345);
  for (nn::Variable& param : module->Parameters()) {
    const int n = param.value().size();
    for (int check = 0; check < checks_per_param; ++check) {
      const int i = rng.UniformInt(0, n - 1);
      const float analytic = param.grad().data()[i];
      float* entry = &param.mutable_value().data()[i];
      const float original = *entry;
      *entry = original + step;
      const float up = loss_fn().value().at(0, 0);
      *entry = original - step;
      const float down = loss_fn().value().at(0, 0);
      *entry = original;
      const float numeric = (up - down) / (2.0f * step);
      const float tolerance =
          atol + rtol * std::max(std::fabs(analytic), std::fabs(numeric));
      EXPECT_NEAR(analytic, numeric, tolerance)
          << "parameter entry " << i << " (analytic " << analytic
          << " vs numeric " << numeric << ")";
    }
  }
}

}  // namespace lead::testing

