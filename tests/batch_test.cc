// Tests for the batch-major execution path: length bucketing, time-major
// packing, batched step kernels vs their per-row reference forwards, and
// gradient checks through the batched graphs.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/autoencoder.h"
#include "core/batching.h"
#include "core/detector.h"
#include "gradcheck.h"
#include "nn/attention.h"
#include "nn/batch.h"
#include "nn/gru.h"
#include "nn/lstm.h"
#include "nn/ops.h"

namespace lead {
namespace {

// ---- BucketByLength. ----

TEST(BucketingTest, ExactLengthBuckets) {
  const std::vector<core::LengthBucket> buckets =
      core::BucketByLength({3, 5, 3, 5, 2}, /*max_batch=*/0,
                           /*max_padding=*/0);
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[0].max_len, 5);
  EXPECT_EQ(buckets[0].items, (std::vector<int>{1, 3}));
  EXPECT_EQ(buckets[1].max_len, 3);
  EXPECT_EQ(buckets[1].items, (std::vector<int>{0, 2}));
  EXPECT_EQ(buckets[2].max_len, 2);
  EXPECT_EQ(buckets[2].items, (std::vector<int>{4}));
}

TEST(BucketingTest, MaxPaddingBoundsLengthSpread) {
  const std::vector<core::LengthBucket> buckets =
      core::BucketByLength({10, 9, 5}, /*max_batch=*/0, /*max_padding=*/1);
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[0].items, (std::vector<int>{0, 1}));
  EXPECT_EQ(buckets[0].max_len, 10);
  EXPECT_EQ(buckets[1].items, (std::vector<int>{2}));
}

TEST(BucketingTest, MaxBatchCapsBucketSize) {
  const std::vector<core::LengthBucket> buckets =
      core::BucketByLength({4, 4, 4, 4, 4}, /*max_batch=*/2,
                           /*max_padding=*/0);
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[0].items.size(), 2u);
  EXPECT_EQ(buckets[1].items.size(), 2u);
  EXPECT_EQ(buckets[2].items.size(), 1u);
}

TEST(BucketingTest, UnboundedPaddingYieldsOneBucket) {
  const std::vector<core::LengthBucket> buckets =
      core::BucketByLength({1, 7, 3}, /*max_batch=*/0, /*max_padding=*/-1);
  ASSERT_EQ(buckets.size(), 1u);
  EXPECT_EQ(buckets[0].max_len, 7);
  EXPECT_EQ(buckets[0].items.size(), 3u);
}

TEST(BucketingTest, EveryIndexAppearsExactlyOnce) {
  const std::vector<int> lengths = {8, 1, 5, 5, 2, 9, 3, 8, 8, 1};
  const std::vector<core::LengthBucket> buckets =
      core::BucketByLength(lengths, /*max_batch=*/3, /*max_padding=*/2);
  std::vector<int> seen(lengths.size(), 0);
  for (const core::LengthBucket& bucket : buckets) {
    for (int item : bucket.items) {
      ASSERT_GE(item, 0);
      ASSERT_LT(item, static_cast<int>(lengths.size()));
      ++seen[item];
      EXPECT_LE(bucket.max_len - lengths[item], 2);
      EXPECT_GE(bucket.max_len, lengths[item]);
    }
    EXPECT_LE(bucket.items.size(), 3u);
  }
  for (int count : seen) EXPECT_EQ(count, 1);
}

// ---- PackViews. ----

TEST(PackViewsTest, UniformBatchHasNoMasks) {
  Rng rng(1);
  const nn::Matrix a = nn::Matrix::Uniform(3, 4, 1.0f, &rng);
  const nn::Matrix b = nn::Matrix::Uniform(3, 4, 1.0f, &rng);
  const nn::StepBatch batch = nn::PackViews(
      {{nn::SeqSpan{&a, 0, 3}}, {nn::SeqSpan{&b, 0, 3}}});
  EXPECT_EQ(batch.batch(), 2);
  EXPECT_EQ(batch.max_len(), 3);
  EXPECT_FALSE(batch.ragged());
  for (int t = 0; t < 3; ++t) {
    for (int c = 0; c < 4; ++c) {
      EXPECT_EQ(batch.steps[t].value().at(0, c), a.at(t, c));
      EXPECT_EQ(batch.steps[t].value().at(1, c), b.at(t, c));
    }
  }
}

TEST(PackViewsTest, RaggedBatchMasksAndZeroPads) {
  Rng rng(2);
  const nn::Matrix a = nn::Matrix::Uniform(4, 3, 1.0f, &rng);
  const nn::Matrix b = nn::Matrix::Uniform(2, 3, 1.0f, &rng);
  const nn::StepBatch batch = nn::PackViews(
      {{nn::SeqSpan{&a, 0, 4}}, {nn::SeqSpan{&b, 0, 2}}});
  EXPECT_TRUE(batch.ragged());
  ASSERT_EQ(batch.masks.size(), 4u);
  EXPECT_EQ(batch.lengths, (std::vector<int>{4, 2}));
  for (int t = 0; t < 4; ++t) {
    EXPECT_EQ(batch.masks[t].value().at(0, 0), 1.0f);
    EXPECT_EQ(batch.masks[t].value().at(1, 0), t < 2 ? 1.0f : 0.0f);
    EXPECT_EQ(batch.inv_masks[t].value().at(1, 0), t < 2 ? 0.0f : 1.0f);
    if (t >= 2) {
      for (int c = 0; c < 3; ++c) {
        EXPECT_EQ(batch.steps[t].value().at(1, c), 0.0f);
      }
    }
  }
}

TEST(PackViewsTest, MultiSpanViewConcatenatesInOrder) {
  Rng rng(3);
  const nn::Matrix bank = nn::Matrix::Uniform(10, 2, 1.0f, &rng);
  // One sequence assembled from rows [6,8) followed by rows [1,3).
  const nn::StepBatch batch = nn::PackViews(
      {{nn::SeqSpan{&bank, 6, 2}, nn::SeqSpan{&bank, 1, 2}}});
  ASSERT_EQ(batch.max_len(), 4);
  const int source_rows[] = {6, 7, 1, 2};
  for (int t = 0; t < 4; ++t) {
    for (int c = 0; c < 2; ++c) {
      EXPECT_EQ(batch.steps[t].value().at(0, c), bank.at(source_rows[t], c));
    }
  }
}

// ---- Batched kernels vs per-row reference forwards. ----

// Packs rows of the given matrices (one sequence each) into a StepBatch.
nn::StepBatch PackMatrices(const std::vector<nn::Matrix>& seqs) {
  std::vector<nn::SeqView> views;
  views.reserve(seqs.size());
  for (const nn::Matrix& m : seqs) {
    views.push_back({nn::SeqSpan{&m, 0, m.rows()}});
  }
  return nn::PackViews(views);
}

std::vector<nn::Matrix> RaggedSequences(int cols, Rng* rng) {
  std::vector<nn::Matrix> seqs;
  for (int len : {5, 3, 4, 1}) {
    seqs.push_back(nn::Matrix::Uniform(len, cols, 1.0f, rng));
  }
  return seqs;
}

TEST(BatchedKernelTest, LstmMatchesPerRowForward) {
  Rng rng(4);
  nn::LstmCell lstm(3, 6, &rng);
  const std::vector<nn::Matrix> seqs = RaggedSequences(3, &rng);
  nn::NoGradGuard no_grad;
  const nn::StepBatch batch = PackMatrices(seqs);
  const std::vector<nn::Variable> hidden = lstm.ForwardSequenceSteps(batch);
  for (size_t b = 0; b < seqs.size(); ++b) {
    const nn::Variable ref =
        lstm.ForwardSequence(nn::Variable::Constant(seqs[b]));
    const int len = seqs[b].rows();
    for (int t = 0; t < batch.max_len(); ++t) {
      // Valid steps match the reference; finished rows stay frozen at
      // their own last valid state.
      const int ref_t = std::min(t, len - 1);
      for (int c = 0; c < 6; ++c) {
        EXPECT_NEAR(hidden[t].value().at(static_cast<int>(b), c),
                    ref.value().at(ref_t, c), 1e-5)
            << "row " << b << " step " << t << " dim " << c;
      }
    }
  }
}

TEST(BatchedKernelTest, GruMatchesPerRowForward) {
  Rng rng(5);
  nn::GruCell gru(3, 5, &rng);
  const std::vector<nn::Matrix> seqs = RaggedSequences(3, &rng);
  nn::NoGradGuard no_grad;
  const std::vector<nn::Variable> hidden =
      gru.ForwardSequenceSteps(PackMatrices(seqs));
  for (size_t b = 0; b < seqs.size(); ++b) {
    const nn::Variable ref =
        gru.ForwardSequence(nn::Variable::Constant(seqs[b]));
    for (int c = 0; c < 5; ++c) {
      EXPECT_NEAR(hidden.back().value().at(static_cast<int>(b), c),
                  ref.value().at(seqs[b].rows() - 1, c), 1e-5)
          << "row " << b << " dim " << c;
    }
  }
}

TEST(BatchedKernelTest, BiLstmMatchesPerRowForwardUniform) {
  Rng rng(6);
  nn::BiLstm bilstm(4, 5, &rng);
  std::vector<nn::Matrix> seqs;
  for (int b = 0; b < 3; ++b) {
    seqs.push_back(nn::Matrix::Uniform(6, 4, 1.0f, &rng));
  }
  nn::NoGradGuard no_grad;
  const std::vector<nn::Variable> steps =
      bilstm.ForwardSteps(PackMatrices(seqs));
  ASSERT_EQ(steps.size(), 6u);
  for (size_t b = 0; b < seqs.size(); ++b) {
    const nn::Variable ref = bilstm.Forward(nn::Variable::Constant(seqs[b]));
    for (int t = 0; t < 6; ++t) {
      for (int c = 0; c < 10; ++c) {
        EXPECT_NEAR(steps[t].value().at(static_cast<int>(b), c),
                    ref.value().at(t, c), 1e-5)
            << "row " << b << " step " << t << " dim " << c;
      }
    }
  }
}

TEST(BatchedKernelTest, AttentionMatchesPerRowForward) {
  Rng rng(7);
  nn::LstmCell lstm(3, 6, &rng);
  nn::LastQueryAttention attention(6, 4, &rng);
  const std::vector<nn::Matrix> seqs = RaggedSequences(3, &rng);
  nn::NoGradGuard no_grad;
  const nn::StepBatch batch = PackMatrices(seqs);
  const nn::Variable batched =
      attention.ForwardSteps(lstm.ForwardSequenceSteps(batch), batch);
  for (size_t b = 0; b < seqs.size(); ++b) {
    const nn::Variable ref = attention.Forward(
        lstm.ForwardSequence(nn::Variable::Constant(seqs[b])));
    for (int c = 0; c < 6; ++c) {
      EXPECT_NEAR(batched.value().at(static_cast<int>(b), c),
                  ref.value().at(0, c), 1e-5)
          << "row " << b << " dim " << c;
    }
  }
}

// ---- Gradient checks through the batched graphs (ragged batches). ----

TEST(BatchedGradTest, LstmSequenceSteps) {
  Rng rng(8);
  nn::LstmCell lstm(3, 4, &rng);
  const std::vector<nn::Matrix> seqs = RaggedSequences(3, &rng);
  const nn::Variable target = nn::Variable::Constant(
      nn::Matrix::Uniform(static_cast<int>(seqs.size()), 4, 1.0f, &rng));
  lead::testing::ExpectGradientsMatch(
      &lstm,
      [&] {
        const std::vector<nn::Variable> hidden =
            lstm.ForwardSequenceSteps(PackMatrices(seqs));
        return nn::MseLoss(hidden.back(), target);
      },
      /*checks_per_param=*/3);
}

TEST(BatchedGradTest, GruSequenceSteps) {
  Rng rng(9);
  nn::GruCell gru(3, 4, &rng);
  const std::vector<nn::Matrix> seqs = RaggedSequences(3, &rng);
  const nn::Variable target = nn::Variable::Constant(
      nn::Matrix::Uniform(static_cast<int>(seqs.size()), 4, 1.0f, &rng));
  lead::testing::ExpectGradientsMatch(
      &gru,
      [&] {
        const std::vector<nn::Variable> hidden =
            gru.ForwardSequenceSteps(PackMatrices(seqs));
        return nn::MseLoss(hidden.back(), target);
      },
      /*checks_per_param=*/3);
}

TEST(BatchedGradTest, AttentionSteps) {
  Rng rng(10);
  nn::LstmCell lstm(3, 4, &rng);
  nn::LastQueryAttention attention(4, 3, &rng);
  const std::vector<nn::Matrix> seqs = RaggedSequences(3, &rng);
  const nn::Variable target = nn::Variable::Constant(
      nn::Matrix::Uniform(static_cast<int>(seqs.size()), 4, 1.0f, &rng));
  lead::testing::ExpectGradientsMatch(
      &attention,
      [&] {
        const nn::StepBatch batch = PackMatrices(seqs);
        return nn::MseLoss(
            attention.ForwardSteps(lstm.ForwardSequenceSteps(batch), batch),
            target);
      },
      /*checks_per_param=*/3);
}

TEST(BatchedGradTest, BiLstmSteps) {
  Rng rng(11);
  nn::BiLstm bilstm(3, 3, &rng);
  const std::vector<nn::Matrix> seqs = RaggedSequences(3, &rng);
  lead::testing::ExpectGradientsMatch(
      &bilstm,
      [&] {
        const std::vector<nn::Variable> steps =
            bilstm.ForwardSteps(PackMatrices(seqs));
        nn::Variable loss;
        for (const nn::Variable& s : steps) {
          const nn::Variable term = nn::Sum(nn::Mul(s, s));
          loss = loss.defined() ? nn::Add(loss, term) : term;
        }
        return nn::ScalarMul(loss, 0.05f);
      },
      /*checks_per_param=*/2);
}

// ---- Batched autoencoder / detector vs single-item reference. ----

constexpr geo::LatLng kOrigin{32.0, 120.9};

core::ProcessedTrajectory TinyProcessed(int num_stays, int stay_len,
                                        int move_len, uint64_t seed) {
  core::ProcessedTrajectory pt;
  Rng rng(seed);
  int index = 0;
  int64_t time = 1'600'000'000;
  auto push_points = [&](int count) {
    traj::IndexRange range{index, index + count - 1};
    for (int i = 0; i < count; ++i) {
      pt.cleaned.points.push_back(
          {geo::OffsetMeters(kOrigin, rng.Uniform(-50, 50),
                             rng.Uniform(-50, 50)),
           time});
      time += 120;
      ++index;
    }
    return range;
  };
  for (int s = 0; s < num_stays; ++s) {
    if (s > 0 && move_len > 0) {
      traj::MoveSegment move;
      move.has_points = true;
      move.range = push_points(move_len);
      pt.segmentation.moves.push_back(move);
    } else {
      pt.segmentation.moves.push_back(traj::MoveSegment{});
    }
    traj::StayPoint sp;
    sp.range = push_points(stay_len);
    pt.segmentation.stays.push_back(sp);
  }
  pt.segmentation.moves.push_back(traj::MoveSegment{});
  pt.candidates = traj::GenerateCandidates(num_stays);
  pt.features = nn::Matrix(index, core::kFeatureDims);
  for (int i = 0; i < pt.features.size(); ++i) {
    pt.features.data()[i] = static_cast<float>(rng.Gaussian(0.0, 0.6));
  }
  return pt;
}

core::AutoencoderOptions SmallAeOptions(bool attention = true,
                                        bool hierarchical = true) {
  core::AutoencoderOptions options;
  options.hidden = 8;
  options.use_attention = attention;
  options.hierarchical = hierarchical;
  return options;
}

TEST(BatchedAutoencoderTest, SingleItemBatchMatchesPerCandidate) {
  Rng rng(12);
  core::HierarchicalAutoencoder ae(SmallAeOptions(), &rng);
  const core::ProcessedTrajectory pt = TinyProcessed(4, 4, 3, 21);
  nn::NoGradGuard no_grad;
  const traj::Candidate c{0, 2};
  const nn::Variable batched = ae.EncodeCandidateBatch({{&pt, c}});
  const nn::Variable ref = ae.EncodeCandidate(pt, c);
  ASSERT_EQ(batched.rows(), 1);
  ASSERT_EQ(batched.cols(), ref.cols());
  for (int i = 0; i < ref.cols(); ++i) {
    EXPECT_NEAR(batched.value().at(0, i), ref.value().at(0, i), 1e-5);
  }
  const float batched_loss =
      ae.ReconstructionLossBatch({{&pt, c}}).value().at(0, 0);
  const float ref_loss = ae.ReconstructionLoss(pt, c).value().at(0, 0);
  EXPECT_NEAR(batched_loss, ref_loss,
              1e-4f * std::max(1.0f, std::fabs(ref_loss)));
}

TEST(BatchedAutoencoderTest, BatchRowsMatchPerCandidateEncodings) {
  Rng rng(13);
  core::HierarchicalAutoencoder ae(SmallAeOptions(), &rng);
  // Two trajectories in one batch: items may mix sources.
  const core::ProcessedTrajectory pt1 = TinyProcessed(4, 4, 3, 22);
  const core::ProcessedTrajectory pt2 = TinyProcessed(3, 5, 2, 23);
  std::vector<core::CandidateBatchItem> items;
  for (const traj::Candidate& c : pt1.candidates) items.push_back({&pt1, c});
  for (const traj::Candidate& c : pt2.candidates) items.push_back({&pt2, c});
  nn::NoGradGuard no_grad;
  const nn::Variable batched = ae.EncodeCandidateBatch(items);
  ASSERT_EQ(batched.rows(), static_cast<int>(items.size()));
  float loss_sum = 0.0f;
  for (size_t i = 0; i < items.size(); ++i) {
    const nn::Variable ref =
        ae.EncodeCandidate(*items[i].pt, items[i].candidate);
    for (int k = 0; k < ref.cols(); ++k) {
      EXPECT_NEAR(batched.value().at(static_cast<int>(i), k),
                  ref.value().at(0, k), 1e-5)
          << "item " << i << " dim " << k;
    }
    loss_sum +=
        ae.ReconstructionLoss(*items[i].pt, items[i].candidate).value().at(0,
                                                                           0);
  }
  const float batched_loss =
      ae.ReconstructionLossBatch(items).value().at(0, 0);
  const float mean_ref = loss_sum / static_cast<float>(items.size());
  EXPECT_NEAR(batched_loss, mean_ref,
              1e-4f * std::max(1.0f, std::fabs(mean_ref)));
}

TEST(BatchedAutoencoderTest, FlatVariantBatchMatchesPerCandidate) {
  Rng rng(14);
  core::HierarchicalAutoencoder ae(
      SmallAeOptions(true, /*hierarchical=*/false), &rng);
  const core::ProcessedTrajectory pt = TinyProcessed(4, 4, 3, 24);
  std::vector<core::CandidateBatchItem> items;
  for (const traj::Candidate& c : pt.candidates) items.push_back({&pt, c});
  nn::NoGradGuard no_grad;
  const nn::Variable batched = ae.EncodeCandidateBatch(items);
  for (size_t i = 0; i < items.size(); ++i) {
    const nn::Variable ref = ae.EncodeCandidate(pt, items[i].candidate);
    for (int k = 0; k < ref.cols(); ++k) {
      EXPECT_NEAR(batched.value().at(static_cast<int>(i), k),
                  ref.value().at(0, k), 1e-5);
    }
  }
}

TEST(BatchedAutoencoderTest, GradCheckReconstructionLossBatch) {
  Rng rng(15);
  core::HierarchicalAutoencoder ae(SmallAeOptions(), &rng);
  const core::ProcessedTrajectory pt = TinyProcessed(3, 3, 2, 25);
  std::vector<core::CandidateBatchItem> items = {
      {&pt, {0, 1}}, {&pt, {0, 2}}, {&pt, {1, 2}}};
  lead::testing::ExpectGradientsMatch(
      &ae, [&] { return ae.ReconstructionLossBatch(items); },
      /*checks_per_param=*/2);
}

TEST(BatchedDetectorTest, ScoresMatchPerSubgroup) {
  Rng rng(16);
  core::DetectorOptions options;
  options.input_dims = 8;
  options.hidden = 6;
  options.num_layers = 2;
  core::StackedBiLstmDetector detector(options, &rng);
  const std::vector<nn::Matrix> subgroups = {
      nn::Matrix::Uniform(4, 8, 1.0f, &rng),
      nn::Matrix::Uniform(2, 8, 1.0f, &rng),
      nn::Matrix::Uniform(3, 8, 1.0f, &rng),
  };
  nn::NoGradGuard no_grad;
  const nn::Variable scores =
      detector.ScoreSubgroupsBatch(PackMatrices(subgroups));
  for (size_t b = 0; b < subgroups.size(); ++b) {
    const nn::Variable ref =
        detector.ScoreSubgroup(nn::Variable::Constant(subgroups[b]));
    // Only columns < lengths[b] are meaningful; padded tails are sliced
    // away by the callers before softmax.
    for (int t = 0; t < subgroups[b].rows(); ++t) {
      EXPECT_NEAR(scores.value().at(static_cast<int>(b), t),
                  ref.value().at(0, t), 1e-5)
          << "subgroup " << b << " member " << t;
    }
  }
}

TEST(BatchedDetectorTest, GradCheckBatchedGroupLoss) {
  Rng rng(17);
  core::DetectorOptions options;
  options.input_dims = 6;
  options.hidden = 4;
  options.num_layers = 2;
  core::StackedBiLstmDetector detector(options, &rng);
  const std::vector<nn::Matrix> subgroups = {
      nn::Matrix::Uniform(3, 6, 1.0f, &rng),
      nn::Matrix::Uniform(1, 6, 1.0f, &rng),
  };
  const nn::Variable label =
      nn::Variable::Constant(nn::Matrix::RowVector({0.7f, 0.1f, 0.1f, 0.1f}));
  lead::testing::ExpectGradientsMatch(
      &detector,
      [&] {
        const nn::Variable scores =
            detector.ScoreSubgroupsBatch(PackMatrices(subgroups));
        std::vector<nn::Variable> valid;
        for (size_t b = 0; b < subgroups.size(); ++b) {
          valid.push_back(nn::SliceCols(
              nn::SliceRows(scores, static_cast<int>(b), 1), 0,
              subgroups[b].rows()));
        }
        return nn::KlDivergence(label,
                                nn::SoftmaxRows(nn::ConcatCols(valid)));
      },
      /*checks_per_param=*/2);
}

}  // namespace
}  // namespace lead
