// Randomized comparisons of every nn op against straightforward
// double-precision reference implementations, across a sweep of shapes.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/ops.h"

namespace lead::nn {
namespace {

using Ref = std::vector<std::vector<double>>;

Ref ToRef(const Matrix& m) {
  Ref out(m.rows(), std::vector<double>(m.cols()));
  for (int r = 0; r < m.rows(); ++r) {
    for (int c = 0; c < m.cols(); ++c) out[r][c] = m.at(r, c);
  }
  return out;
}

void ExpectMatches(const Variable& actual, const Ref& expected,
                   double tolerance = 2e-4) {
  ASSERT_EQ(actual.rows(), static_cast<int>(expected.size()));
  ASSERT_EQ(actual.cols(), static_cast<int>(expected[0].size()));
  for (int r = 0; r < actual.rows(); ++r) {
    for (int c = 0; c < actual.cols(); ++c) {
      EXPECT_NEAR(actual.value().at(r, c), expected[r][c], tolerance)
          << "at (" << r << "," << c << ")";
    }
  }
}

class OpsReferenceSweep
    : public ::testing::TestWithParam<std::pair<int, int>> {
 protected:
  Matrix Random(int rows, int cols, uint64_t salt) {
    Rng rng(GetParam().first * 1000 + GetParam().second + salt);
    return Matrix::Uniform(rows, cols, 2.0f, &rng);
  }
};

TEST_P(OpsReferenceSweep, AddSubMul) {
  const auto [rows, cols] = GetParam();
  const Matrix ma = Random(rows, cols, 1);
  const Matrix mb = Random(rows, cols, 2);
  const Variable a = Variable::Constant(ma);
  const Variable b = Variable::Constant(mb);
  Ref sum = ToRef(ma);
  Ref diff = ToRef(ma);
  Ref prod = ToRef(ma);
  const Ref rb = ToRef(mb);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      sum[r][c] += rb[r][c];
      diff[r][c] -= rb[r][c];
      prod[r][c] *= rb[r][c];
    }
  }
  ExpectMatches(Add(a, b), sum);
  ExpectMatches(Sub(a, b), diff);
  ExpectMatches(Mul(a, b), prod);
}

TEST_P(OpsReferenceSweep, ScalarOps) {
  const auto [rows, cols] = GetParam();
  const Matrix ma = Random(rows, cols, 3);
  const Variable a = Variable::Constant(ma);
  Ref scaled = ToRef(ma);
  Ref shifted = ToRef(ma);
  for (auto& row : scaled) {
    for (double& v : row) v *= -1.5;
  }
  for (auto& row : shifted) {
    for (double& v : row) v += 0.75;
  }
  ExpectMatches(ScalarMul(a, -1.5f), scaled);
  ExpectMatches(AddScalar(a, 0.75f), shifted);
}

TEST_P(OpsReferenceSweep, Nonlinearities) {
  const auto [rows, cols] = GetParam();
  const Matrix ma = Random(rows, cols, 4);
  const Variable a = Variable::Constant(ma);
  Ref tanh_ref = ToRef(ma);
  Ref sig_ref = ToRef(ma);
  Ref relu_ref = ToRef(ma);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      tanh_ref[r][c] = std::tanh(tanh_ref[r][c]);
      sig_ref[r][c] = 1.0 / (1.0 + std::exp(-sig_ref[r][c]));
      relu_ref[r][c] = std::max(0.0, relu_ref[r][c]);
    }
  }
  ExpectMatches(Tanh(a), tanh_ref);
  ExpectMatches(Sigmoid(a), sig_ref);
  ExpectMatches(Relu(a), relu_ref);
}

TEST_P(OpsReferenceSweep, SoftmaxAgainstReference) {
  const auto [rows, cols] = GetParam();
  const Matrix ma = Random(rows, cols, 5);
  const Variable a = Variable::Constant(ma);
  Ref ref = ToRef(ma);
  for (auto& row : ref) {
    double max_v = row[0];
    for (double v : row) max_v = std::max(max_v, v);
    double sum = 0.0;
    for (double& v : row) {
      v = std::exp(v - max_v);
      sum += v;
    }
    for (double& v : row) v /= sum;
  }
  ExpectMatches(SoftmaxRows(a), ref);
}

TEST_P(OpsReferenceSweep, ReductionsAgainstReference) {
  const auto [rows, cols] = GetParam();
  const Matrix ma = Random(rows, cols, 6);
  const Variable a = Variable::Constant(ma);
  double total = 0.0;
  for (const auto& row : ToRef(ma)) {
    for (double v : row) total += v;
  }
  EXPECT_NEAR(Sum(a).value().at(0, 0), total, 1e-3);
  EXPECT_NEAR(Mean(a).value().at(0, 0), total / (rows * cols), 1e-4);
}

TEST_P(OpsReferenceSweep, TransposeReverseSliceConcat) {
  const auto [rows, cols] = GetParam();
  const Matrix ma = Random(rows, cols, 7);
  const Variable a = Variable::Constant(ma);
  const Variable t = Transpose(a);
  const Variable back = Transpose(t);
  ExpectMatches(back, ToRef(ma));
  const Variable rev = ReverseRows(a);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      EXPECT_FLOAT_EQ(rev.value().at(r, c),
                      ma.at(rows - 1 - r, c));
    }
  }
  if (rows >= 2) {
    const Variable top = SliceRows(a, 0, 1);
    const Variable rest = SliceRows(a, 1, rows - 1);
    ExpectMatches(ConcatRows({top, rest}), ToRef(ma));
  }
  if (cols >= 2) {
    const Variable left = SliceCols(a, 0, 1);
    const Variable right = SliceCols(a, 1, cols - 1);
    ExpectMatches(ConcatCols({left, right}), ToRef(ma));
  }
}

TEST_P(OpsReferenceSweep, MatMulAgainstReference) {
  const auto [rows, cols] = GetParam();
  const int inner = 7;
  const Matrix ma = Random(rows, inner, 8);
  const Matrix mb = Random(inner, cols, 9);
  const Variable a = Variable::Constant(ma);
  const Variable b = Variable::Constant(mb);
  Ref ref(rows, std::vector<double>(cols, 0.0));
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      for (int k = 0; k < inner; ++k) {
        ref[r][c] += static_cast<double>(ma.at(r, k)) * mb.at(k, c);
      }
    }
  }
  ExpectMatches(MatMul(a, b), ref, 5e-4);
}

INSTANTIATE_TEST_SUITE_P(Shapes, OpsReferenceSweep,
                         ::testing::Values(std::pair<int, int>{1, 1},
                                           std::pair<int, int>{1, 9},
                                           std::pair<int, int>{7, 1},
                                           std::pair<int, int>{5, 5},
                                           std::pair<int, int>{13, 31}));

}  // namespace
}  // namespace lead::nn
