// Unit tests for the SP-R white-list baseline on crafted geometry
// (no training of neural models; SP-RNN end-to-end lives in lead_test).
#include <gtest/gtest.h>

#include "baselines/sp_rnn.h"
#include "baselines/sp_rule.h"

namespace lead::baselines {
namespace {

constexpr geo::LatLng kOrigin{32.0, 120.9};

// A trajectory with stays at the given east offsets (meters), connected
// by drives.
traj::RawTrajectory TrackWithStays(const std::vector<double>& stay_easts,
                                   const std::string& id = "t") {
  traj::RawTrajectory t;
  t.trajectory_id = id;
  t.truck_id = id;
  int64_t time = 1'600'000'000;
  double previous = stay_easts.front();
  for (size_t s = 0; s < stay_easts.size(); ++s) {
    if (s > 0) {
      for (double e = previous + 1500; e < stay_easts[s] - 700; e += 1500) {
        t.points.push_back({geo::OffsetMeters(kOrigin, e, 0), time});
        time += 120;
      }
    }
    for (int i = 0; i < 6; ++i) {
      t.points.push_back(
          {geo::OffsetMeters(kOrigin, stay_easts[s] + 8 * (i % 2), 0),
           time});
      time += 240;
    }
    previous = stay_easts[s];
  }
  return t;
}

TEST(SpRuleTest, DetectsViaWhiteListMatch) {
  // Training trajectory: stays at 0 / 10 km / 20 km, loaded (1,2):
  // white list gets locations ~10 km and ~20 km.
  SpRuleBaseline sp_r(core::PipelineOptions(), {});
  core::LabeledRawTrajectory train;
  train.raw = TrackWithStays({0, 10000, 20000}, "train");
  train.loaded = {1, 2};
  ASSERT_TRUE(sp_r.Train({train}).ok());
  EXPECT_EQ(sp_r.whitelist_size(), 2);

  // Test trajectory with stays at 5 km / 10 km / 20 km / 30 km: the
  // 10 km and 20 km stays match the white list.
  const auto detection =
      sp_r.Detect(TrackWithStays({5000, 10000, 20000, 30000}, "test"));
  ASSERT_TRUE(detection.ok()) << detection.status();
  EXPECT_EQ(detection->loaded, (traj::Candidate{1, 2}));
  EXPECT_FALSE(detection->used_default);
}

TEST(SpRuleTest, SearchRadiusControlsMatching) {
  core::LabeledRawTrajectory train;
  train.raw = TrackWithStays({0, 10000, 20000}, "train");
  train.loaded = {1, 2};
  // Test stays are offset 800 m from the white-list locations.
  const traj::RawTrajectory test =
      TrackWithStays({5000, 10800, 20800, 30000}, "test");

  SpRuleBaseline tight(core::PipelineOptions(), {.search_radius_m = 500});
  ASSERT_TRUE(tight.Train({train}).ok());
  const auto miss = tight.Detect(test);
  ASSERT_TRUE(miss.ok());
  EXPECT_TRUE(miss->used_default);  // nothing within 500 m

  SpRuleBaseline loose(core::PipelineOptions(), {.search_radius_m = 1000});
  ASSERT_TRUE(loose.Train({train}).ok());
  const auto hit = loose.Detect(test);
  ASSERT_TRUE(hit.ok());
  EXPECT_FALSE(hit->used_default);
  EXPECT_EQ(hit->loaded, (traj::Candidate{1, 2}));
}

TEST(SpRuleTest, GreedyPicksOutermostMatches) {
  // White list covers stays 0, 2 and 3 of the test trajectory: greedy
  // spans first to last l/u stay point even if that is wrong.
  core::LabeledRawTrajectory a;
  a.raw = TrackWithStays({0, 10000, 20000}, "a");
  a.loaded = {0, 2};  // white list: 0 m and 20 km
  core::LabeledRawTrajectory b;
  b.raw = TrackWithStays({30000, 40000, 50000}, "b");
  b.loaded = {1, 2};  // white list: 40 km and 50 km
  SpRuleBaseline sp_r(core::PipelineOptions(), {});
  ASSERT_TRUE(sp_r.Train({a, b}).ok());
  EXPECT_EQ(sp_r.whitelist_size(), 4);

  const auto detection =
      sp_r.Detect(TrackWithStays({0, 15000, 20000, 40000}, "test"));
  ASSERT_TRUE(detection.ok());
  // Matches at stays 0, 2, 3 -> greedy spans (0, 3).
  EXPECT_EQ(detection->loaded, (traj::Candidate{0, 3}));
}

TEST(SpRuleTest, FailsGracefullyUntrainedAndUnprocessable) {
  SpRuleBaseline sp_r(core::PipelineOptions(), {});
  EXPECT_FALSE(sp_r.Detect(TrackWithStays({0, 10000}, "x")).ok());
  core::LabeledRawTrajectory train;
  train.raw = TrackWithStays({0, 10000, 20000}, "train");
  train.loaded = {1, 2};
  ASSERT_TRUE(sp_r.Train({train}).ok());
  // Single-stay trajectory cannot be processed.
  const auto result = sp_r.Detect(TrackWithStays({0}, "single"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SpRuleTest, TrainRejectsOutOfRangeLabels) {
  SpRuleBaseline sp_r(core::PipelineOptions(), {});
  core::LabeledRawTrajectory bad;
  bad.raw = TrackWithStays({0, 10000}, "bad");
  bad.loaded = {1, 7};  // only 2 stay points exist
  EXPECT_FALSE(sp_r.Train({bad}).ok());
}

TEST(RnnCellTypeTest, Names) {
  EXPECT_STREQ(RnnCellTypeName(RnnCellType::kGru), "SP-GRU");
  EXPECT_STREQ(RnnCellTypeName(RnnCellType::kLstm), "SP-LSTM");
}

}  // namespace
}  // namespace lead::baselines
