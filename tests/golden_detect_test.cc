// Golden-file regression test for the Detect probability pipeline.
//
// A fixed simulated corpus and a fixed-seed model (0 training epochs: the
// normalizer is fitted, the weights stay at their seeded init) make the
// merged candidate probabilities a pure deterministic function of the
// code. The expected values live in tests/golden/detect_probs.txt; any
// numeric drift — an op reordered, a reduction changed, a normalizer
// tweak — fails with a per-line diff.
//
// To regenerate after an intentional change:
//   LEAD_UPDATE_GOLDEN=1 ./build/tests/golden_detect_test
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/lead.h"
#include "eval/harness.h"

namespace lead {
namespace {

#ifndef LEAD_GOLDEN_DIR
#error "build must define LEAD_GOLDEN_DIR"
#endif

constexpr int kMaxTrajectories = 6;

std::string GoldenPath() {
  return std::string(LEAD_GOLDEN_DIR) + "/detect_probs.txt";
}

// One line per candidate: "<trajectory_id> <flat_index> <probability>".
// %.9g round-trips a float exactly, so string equality is bit equality.
std::vector<std::string> CurrentLines() {
  eval::ExperimentConfig config = eval::DefaultConfig(1.0);
  config.world.num_background_pois = 1500;
  config.world.num_loading_facilities = 8;
  config.world.num_unloading_facilities = 12;
  config.world.num_rest_areas = 12;
  config.world.num_depots = 6;
  config.dataset.num_trajectories = 40;
  config.dataset.num_trucks = 20;
  config.sim.sample_interval_mean_s = 240.0;
  config.lead.train.autoencoder_epochs = 0;
  config.lead.train.detector_epochs = 0;
  auto data = eval::BuildExperiment(config);
  EXPECT_TRUE(data.ok()) << data.status();

  core::LeadModel model(config.lead);
  const Status trained =
      model.Train(data->TrainLabeled(), data->ValLabeled(),
                  data->world->poi_index(), nullptr);
  EXPECT_TRUE(trained.ok()) << trained;

  std::vector<std::string> lines;
  int used = 0;
  for (const sim::SimulatedDay& day : data->split.test) {
    if (used >= kMaxTrajectories) break;
    auto detection = model.Detect(day.raw, data->world->poi_index());
    if (!detection.ok()) continue;
    ++used;
    for (size_t i = 0; i < detection->probabilities.size(); ++i) {
      char buf[128];
      std::snprintf(buf, sizeof(buf), "%s %zu %.9g",
                    day.raw.trajectory_id.c_str(), i,
                    static_cast<double>(detection->probabilities[i]));
      lines.emplace_back(buf);
    }
  }
  EXPECT_GT(used, 0);
  return lines;
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    lines.push_back(line);
  }
  return lines;
}

TEST(GoldenDetectTest, ProbabilitiesMatchGoldenFile) {
  const std::vector<std::string> actual = CurrentLines();
  ASSERT_FALSE(actual.empty());

  if (std::getenv("LEAD_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(GoldenPath());
    ASSERT_TRUE(out.good()) << "cannot write " << GoldenPath();
    out << "# Expected Detect probabilities for the golden corpus.\n"
        << "# Format: <trajectory_id> <candidate_flat_index> <probability>\n"
        << "# Regenerate: LEAD_UPDATE_GOLDEN=1 ./golden_detect_test\n";
    for (const std::string& line : actual) out << line << "\n";
    GTEST_SKIP() << "golden file regenerated with " << actual.size()
                 << " lines at " << GoldenPath();
  }

  const std::vector<std::string> expected = ReadLines(GoldenPath());
  ASSERT_FALSE(expected.empty())
      << "no golden fixture at " << GoldenPath()
      << "; run with LEAD_UPDATE_GOLDEN=1 to create it";

  // Readable diff: report every drifted line, not just the first.
  std::ostringstream diff;
  int mismatches = 0;
  const size_t n = std::max(expected.size(), actual.size());
  for (size_t i = 0; i < n; ++i) {
    const std::string& want =
        i < expected.size() ? expected[i] : "<missing>";
    const std::string& got = i < actual.size() ? actual[i] : "<missing>";
    if (want != got) {
      ++mismatches;
      if (mismatches <= 20) {
        diff << "  line " << (i + 1) << ": expected \"" << want
             << "\" got \"" << got << "\"\n";
      }
    }
  }
  EXPECT_EQ(mismatches, 0)
      << "Detect probabilities drifted from " << GoldenPath() << ":\n"
      << diff.str()
      << (mismatches > 20 ? "  ...and " + std::to_string(mismatches - 20) +
                                " more\n"
                          : "")
      << "If the change is intentional, regenerate with "
         "LEAD_UPDATE_GOLDEN=1.";
}

}  // namespace
}  // namespace lead
