// Tests for Adam, early stopping, normalization and serialization.
#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/adam.h"
#include "nn/early_stopping.h"
#include "nn/linear.h"
#include "nn/normalizer.h"
#include "nn/ops.h"
#include "nn/serialize.h"

namespace lead::nn {
namespace {

TEST(AdamTest, ConvergesOnQuadratic) {
  // Minimize ||x - target||^2.
  Variable x = Variable::Parameter(Matrix::RowVector({5.0f, -3.0f}));
  const Variable target = Variable::Constant(Matrix::RowVector({1.0f, 2.0f}));
  Adam adam({x}, {.learning_rate = 0.05f});
  for (int i = 0; i < 500; ++i) {
    Backward(MseLoss(x, target));
    adam.StepAndZeroGrad();
  }
  EXPECT_NEAR(x.value().at(0, 0), 1.0f, 0.05f);
  EXPECT_NEAR(x.value().at(0, 1), 2.0f, 0.05f);
}

TEST(AdamTest, FitsLinearRegression) {
  Rng rng(3);
  Linear model(3, 1, &rng);
  // Ground truth: y = 2 x0 - x1 + 0.5 x2 + 1.
  const int n = 64;
  Matrix x(n, 3);
  Matrix y(n, 1);
  for (int i = 0; i < n; ++i) {
    for (int c = 0; c < 3; ++c) x.at(i, c) = (float)rng.Uniform(-1, 1);
    y.at(i, 0) = 2 * x.at(i, 0) - x.at(i, 1) + 0.5f * x.at(i, 2) + 1.0f;
  }
  const Variable xs = Variable::Constant(x);
  const Variable ys = Variable::Constant(y);
  Adam adam(model.Parameters(), {.learning_rate = 0.05f});
  float final_loss = 1e9f;
  for (int i = 0; i < 800; ++i) {
    const Variable loss = MseLoss(model.Forward(xs), ys);
    final_loss = loss.value().at(0, 0);
    Backward(loss);
    adam.StepAndZeroGrad();
  }
  EXPECT_LT(final_loss, 1e-3f);
}

TEST(AdamTest, ClipGradNormLimitsUpdateDirection) {
  Variable x = Variable::Parameter(Matrix::RowVector({1000.0f}));
  Adam clipped({x}, {.learning_rate = 0.1f, .clip_grad_norm = 1.0f});
  Backward(MseLoss(x, Variable::Constant(Matrix::RowVector({0.0f}))));
  EXPECT_GT(clipped.GradNorm(), 1.0f);
  clipped.StepAndZeroGrad();
  // Adam's per-step movement is bounded by ~lr regardless of clip, but the
  // clip must not blow up anything.
  EXPECT_LT(x.value().at(0, 0), 1000.0f);
  EXPECT_FLOAT_EQ(clipped.GradNorm(), 0.0f);  // gradients cleared
}

TEST(EarlyStoppingTest, StopsAfterPatienceWithoutImprovement) {
  EarlyStopping stopper(/*patience=*/2);
  EXPECT_TRUE(stopper.Report(1.0f));   // improves
  EXPECT_TRUE(stopper.Report(0.5f));   // improves
  EXPECT_TRUE(stopper.Report(0.6f));   // 1 bad epoch
  EXPECT_FALSE(stopper.Report(0.7f));  // 2 bad epochs -> stop
  EXPECT_FLOAT_EQ(stopper.best(), 0.5f);
}

TEST(EarlyStoppingTest, ImprovementResetsPatience) {
  EarlyStopping stopper(/*patience=*/2);
  EXPECT_TRUE(stopper.Report(1.0f));
  EXPECT_TRUE(stopper.Report(1.1f));
  EXPECT_TRUE(stopper.Report(0.9f));  // reset
  EXPECT_TRUE(stopper.Report(1.0f));
  EXPECT_FALSE(stopper.Report(1.0f));
}

TEST(NormalizerTest, StandardizesToZeroMeanUnitVariance) {
  std::vector<std::vector<float>> rows = {
      {1.0f, 10.0f}, {2.0f, 20.0f}, {3.0f, 30.0f}};
  ZScoreNormalizer z;
  ASSERT_TRUE(z.Fit(rows).ok());
  EXPECT_EQ(z.dims(), 2);
  // Check the transformed corpus statistics.
  double mean0 = 0, var0 = 0;
  std::vector<std::vector<float>> transformed;
  for (auto row : rows) {
    z.Apply(&row);
    transformed.push_back(row);
    mean0 += row[0];
  }
  mean0 /= 3;
  for (const auto& row : transformed) {
    var0 += (row[0] - mean0) * (row[0] - mean0);
  }
  var0 /= 3;
  EXPECT_NEAR(mean0, 0.0, 1e-5);
  EXPECT_NEAR(var0, 1.0, 1e-4);
}

TEST(NormalizerTest, InvertRoundTrips) {
  std::vector<std::vector<float>> rows = {{1, 5}, {3, 9}, {-2, 4}};
  ZScoreNormalizer z;
  ASSERT_TRUE(z.Fit(rows).ok());
  std::vector<float> row = {2.0f, 6.0f};
  std::vector<float> copy = row;
  z.Apply(&row);
  z.Invert(&row);
  EXPECT_NEAR(row[0], copy[0], 1e-4);
  EXPECT_NEAR(row[1], copy[1], 1e-4);
}

TEST(NormalizerTest, ConstantDimensionIsSafe) {
  std::vector<std::vector<float>> rows = {{7, 1}, {7, 2}, {7, 3}};
  ZScoreNormalizer z;
  ASSERT_TRUE(z.Fit(rows).ok());
  std::vector<float> row = {7.0f, 2.0f};
  z.Apply(&row);
  EXPECT_TRUE(std::isfinite(row[0]));
  EXPECT_NEAR(row[0], 0.0f, 1e-3);
}

TEST(NormalizerTest, RejectsEmptyAndRagged) {
  ZScoreNormalizer z;
  EXPECT_FALSE(z.Fit({}).ok());
  EXPECT_FALSE(z.Fit({{1.0f, 2.0f}, {1.0f}}).ok());
}

TEST(SerializeTest, RoundTripsParameters) {
  Rng rng(5);
  Linear a(4, 3, &rng);
  Linear b(4, 3, &rng);  // different init
  std::stringstream buffer;
  ASSERT_TRUE(SaveParameters(a, buffer).ok());
  ASSERT_TRUE(LoadParameters(&b, buffer).ok());
  const auto pa = a.Parameters();
  const auto pb = b.Parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    for (int j = 0; j < pa[i].value().size(); ++j) {
      EXPECT_FLOAT_EQ(pa[i].value().data()[j], pb[i].value().data()[j]);
    }
  }
}

TEST(SerializeTest, RejectsShapeMismatch) {
  Rng rng(6);
  Linear a(4, 3, &rng);
  Linear b(3, 4, &rng);
  std::stringstream buffer;
  ASSERT_TRUE(SaveParameters(a, buffer).ok());
  EXPECT_FALSE(LoadParameters(&b, buffer).ok());
}

TEST(SerializeTest, RejectsGarbage) {
  Rng rng(7);
  Linear a(2, 2, &rng);
  std::stringstream buffer("not a checkpoint at all");
  EXPECT_FALSE(LoadParameters(&a, buffer).ok());
}

}  // namespace
}  // namespace lead::nn
