// Tests for Douglas-Peucker simplification and track statistics.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "traj/simplify.h"

namespace lead::traj {
namespace {

constexpr geo::LatLng kOrigin{32.0, 120.9};

GpsPoint At(double east, double north, int64_t t) {
  return GpsPoint{geo::OffsetMeters(kOrigin, east, north), t};
}

TEST(SimplifyTest, StraightLineCollapsesToEndpoints) {
  std::vector<GpsPoint> points;
  for (int i = 0; i <= 10; ++i) points.push_back(At(i * 100.0, 0.0, i * 60));
  const std::vector<int> kept = SimplifyIndices(points, 20.0);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept.front(), 0);
  EXPECT_EQ(kept.back(), 10);
}

TEST(SimplifyTest, KeepsSignificantCorner) {
  std::vector<GpsPoint> points;
  for (int i = 0; i <= 5; ++i) points.push_back(At(i * 100.0, 0.0, i * 60));
  for (int i = 1; i <= 5; ++i) {
    points.push_back(At(500.0, i * 100.0, (5 + i) * 60));
  }
  const std::vector<int> kept = SimplifyIndices(points, 20.0);
  // First, corner (index 5), last.
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_EQ(kept[1], 5);
}

TEST(SimplifyTest, ToleranceControlsDetail) {
  // A sine-wave path: lower tolerance keeps more points.
  std::vector<GpsPoint> points;
  for (int i = 0; i <= 60; ++i) {
    points.push_back(
        At(i * 100.0, 300.0 * std::sin(i * 0.4), i * 60));
  }
  const size_t coarse = SimplifyIndices(points, 250.0).size();
  const size_t fine = SimplifyIndices(points, 20.0).size();
  EXPECT_LT(coarse, fine);
  EXPECT_GT(fine, 10u);
}

TEST(SimplifyTest, TinyInputsPassThrough) {
  std::vector<GpsPoint> empty;
  EXPECT_TRUE(SimplifyIndices(empty, 10.0).empty());
  std::vector<GpsPoint> two = {At(0, 0, 0), At(100, 0, 60)};
  EXPECT_EQ(SimplifyIndices(two, 10.0).size(), 2u);
}

TEST(SimplifyTest, SimplifiedTrajectoryKeepsMetadataAndOrder) {
  RawTrajectory t;
  t.trajectory_id = "id";
  t.truck_id = "truck";
  for (int i = 0; i <= 20; ++i) {
    t.points.push_back(At(i * 100.0, (i % 2) * 250.0, i * 60));
  }
  const RawTrajectory simplified = Simplify(t, 30.0);
  EXPECT_EQ(simplified.trajectory_id, "id");
  EXPECT_GE(simplified.size(), 2);
  EXPECT_TRUE(ValidateChronological(simplified).ok());
}

TEST(SimplifyTest, MaxErrorIsBoundedByTolerance) {
  // Property: every dropped point is within tolerance of the simplified
  // polyline (checked against the segment between its surviving
  // neighbours).
  Rng rng(9);
  std::vector<GpsPoint> points;
  double north = 0.0;
  for (int i = 0; i <= 80; ++i) {
    north += rng.Gaussian(0, 60);
    points.push_back(At(i * 120.0, north, i * 60));
  }
  const double tolerance = 100.0;
  const std::vector<int> kept = SimplifyIndices(points, tolerance);
  for (size_t k = 1; k < kept.size(); ++k) {
    const geo::LatLng& a = points[kept[k - 1]].pos;
    const geo::LatLng& b = points[kept[k]].pos;
    for (int i = kept[k - 1] + 1; i < kept[k]; ++i) {
      const geo::EastNorth ab = geo::ToLocalMeters(a, b);
      const geo::EastNorth ap = geo::ToLocalMeters(a, points[i].pos);
      const double len_sq = ab.east_m * ab.east_m + ab.north_m * ab.north_m;
      double t = len_sq > 0 ? (ap.east_m * ab.east_m +
                               ap.north_m * ab.north_m) / len_sq
                            : 0.0;
      t = std::clamp(t, 0.0, 1.0);
      const double d = std::hypot(ap.east_m - t * ab.east_m,
                                  ap.north_m - t * ab.north_m);
      // Douglas-Peucker guarantees distance to the *recursive* polyline;
      // allow slack for the local-plane approximation.
      EXPECT_LE(d, tolerance + 1.0);
    }
  }
}

TEST(TrackStatsTest, ComputesSpeedAndStraightness) {
  std::vector<GpsPoint> points;
  // 1 km straight east over 120 s -> 30 km/h.
  points.push_back(At(0, 0, 0));
  points.push_back(At(500, 0, 60));
  points.push_back(At(1000, 0, 120));
  const TrackStats stats = ComputeStats(points, IndexRange{0, 2});
  EXPECT_NEAR(stats.path_length_m, 1000.0, 2.0);
  EXPECT_EQ(stats.duration_s, 120);
  EXPECT_NEAR(stats.mean_speed_kmh, 30.0, 0.2);
  EXPECT_NEAR(stats.max_leg_speed_kmh, 30.0, 0.2);
  EXPECT_NEAR(stats.straightness, 1.0, 1e-3);
}

TEST(TrackStatsTest, DetourLowersStraightness) {
  std::vector<GpsPoint> points = {
      At(0, 0, 0), At(500, 800, 60), At(1000, 0, 120)};
  const TrackStats stats = ComputeStats(points, IndexRange{0, 2});
  EXPECT_LT(stats.straightness, 0.6);
  EXPECT_GT(stats.straightness, 0.3);
}

}  // namespace
}  // namespace lead::traj
