// Tests for DBSCAN clustering over geographic points.
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geo/dbscan.h"

namespace lead::geo {
namespace {

constexpr LatLng kOrigin{32.0, 120.9};

// `count` points within `spread_m` of a center offset (east, north).
void AddBlob(std::vector<LatLng>* points, double east, double north,
             int count, double spread_m, Rng* rng) {
  for (int i = 0; i < count; ++i) {
    points->push_back(OffsetMeters(kOrigin, east + rng->Uniform(-spread_m,
                                                                spread_m),
                                   north + rng->Uniform(-spread_m,
                                                        spread_m)));
  }
}

TEST(DbscanTest, EmptyInput) {
  const DbscanResult result = Dbscan({});
  EXPECT_EQ(result.num_clusters, 0);
  EXPECT_TRUE(result.labels.empty());
}

TEST(DbscanTest, SingleBlobIsOneCluster) {
  Rng rng(1);
  std::vector<LatLng> points;
  AddBlob(&points, 0, 0, 12, 150, &rng);
  const DbscanResult result = Dbscan(points, {.epsilon_m = 500,
                                              .min_points = 3});
  EXPECT_EQ(result.num_clusters, 1);
  for (int label : result.labels) EXPECT_EQ(label, 0);
  EXPECT_EQ(result.sizes[0], 12);
  EXPECT_LT(DistanceMeters(result.centroids[0], kOrigin), 200.0);
}

TEST(DbscanTest, SeparatesDistantBlobsAndMarksNoise) {
  Rng rng(2);
  std::vector<LatLng> points;
  AddBlob(&points, 0, 0, 10, 150, &rng);        // cluster A
  AddBlob(&points, 8000, 0, 8, 150, &rng);      // cluster B
  points.push_back(OffsetMeters(kOrigin, 4000, 4000));  // lone noise point
  const DbscanResult result = Dbscan(points, {.epsilon_m = 500,
                                              .min_points = 3});
  EXPECT_EQ(result.num_clusters, 2);
  EXPECT_EQ(result.labels.back(), kNoise);
  // First blob discovered first -> label 0.
  EXPECT_EQ(result.labels[0], 0);
  EXPECT_EQ(result.labels[12], 1);
  EXPECT_EQ(result.sizes[0], 10);
  EXPECT_EQ(result.sizes[1], 8);
}

TEST(DbscanTest, MinPointsControlsCoreFormation) {
  Rng rng(3);
  std::vector<LatLng> points;
  AddBlob(&points, 0, 0, 4, 100, &rng);
  // min_points larger than the blob: everything is noise.
  const DbscanResult strict = Dbscan(points, {.epsilon_m = 500,
                                              .min_points = 6});
  EXPECT_EQ(strict.num_clusters, 0);
  for (int label : strict.labels) EXPECT_EQ(label, kNoise);
  // Permissive: one cluster.
  const DbscanResult loose = Dbscan(points, {.epsilon_m = 500,
                                             .min_points = 2});
  EXPECT_EQ(loose.num_clusters, 1);
}

TEST(DbscanTest, ChainsMergeThroughCorePoints) {
  // A line of points 300 m apart with eps 500: density-connected into one
  // cluster even though the ends are km apart.
  std::vector<LatLng> points;
  for (int i = 0; i < 15; ++i) {
    points.push_back(OffsetMeters(kOrigin, i * 300.0, 0));
  }
  const DbscanResult result = Dbscan(points, {.epsilon_m = 500,
                                              .min_points = 3});
  EXPECT_EQ(result.num_clusters, 1);
  EXPECT_EQ(result.sizes[0], 15);
}

TEST(DbscanTest, MatchesBruteForceOnRandomInput) {
  // Property: cluster co-membership must match a brute-force DBSCAN.
  Rng rng(4);
  std::vector<LatLng> points;
  AddBlob(&points, 0, 0, 20, 400, &rng);
  AddBlob(&points, 5000, 2000, 15, 400, &rng);
  AddBlob(&points, -4000, -3000, 5, 2500, &rng);  // sparse: partly noise
  const DbscanOptions options{.epsilon_m = 600, .min_points = 4};
  const DbscanResult fast = Dbscan(points, options);

  // Brute force.
  const int n = static_cast<int>(points.size());
  auto neighbours = [&](int i) {
    std::vector<int> out;
    for (int j = 0; j < n; ++j) {
      if (DistanceMeters(points[i], points[j]) <= options.epsilon_m) {
        out.push_back(j);
      }
    }
    return out;
  };
  std::vector<int> slow(n, -2);
  int clusters = 0;
  for (int i = 0; i < n; ++i) {
    if (slow[i] != -2) continue;
    auto nb = neighbours(i);
    if (static_cast<int>(nb.size()) < options.min_points) {
      slow[i] = kNoise;
      continue;
    }
    const int cluster = clusters++;
    slow[i] = cluster;
    std::vector<int> frontier = nb;
    while (!frontier.empty()) {
      const int j = frontier.back();
      frontier.pop_back();
      if (slow[j] == kNoise) slow[j] = cluster;
      if (slow[j] != -2) continue;
      slow[j] = cluster;
      auto nj = neighbours(j);
      if (static_cast<int>(nj.size()) >= options.min_points) {
        frontier.insert(frontier.end(), nj.begin(), nj.end());
      }
    }
  }
  ASSERT_EQ(fast.num_clusters, clusters);
  // Same noise set and same co-membership relation.
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(fast.labels[i] == kNoise, slow[i] == kNoise) << i;
    for (int j = i + 1; j < n; ++j) {
      if (fast.labels[i] == kNoise || fast.labels[j] == kNoise) continue;
      EXPECT_EQ(fast.labels[i] == fast.labels[j], slow[i] == slow[j])
          << i << "," << j;
    }
  }
}

}  // namespace
}  // namespace lead::geo
