// Tests for core features, pipeline, grouping and label processing.
#include <numeric>

#include <gtest/gtest.h>

#include "core/features.h"
#include "core/grouping.h"
#include "core/labels.h"
#include "core/lead.h"
#include "core/pipeline.h"

namespace lead::core {
namespace {

constexpr geo::LatLng kOrigin{32.0, 120.9};

traj::RawTrajectory ThreeStayTrajectory() {
  traj::RawTrajectory t;
  t.trajectory_id = "pipeline_test";
  t.truck_id = "truck";
  int64_t time = 1'600'000'000;
  auto stay = [&](double east) {
    for (int i = 0; i < 6; ++i) {
      t.points.push_back(
          {geo::OffsetMeters(kOrigin, east + 10 * (i % 2), 0), time});
      time += 240;
    }
  };
  auto move = [&](double from, double to) {
    for (double e = from + 1500; e < to - 700; e += 1500) {
      t.points.push_back({geo::OffsetMeters(kOrigin, e, 0), time});
      time += 120;
    }
  };
  stay(0);
  move(0, 9000);
  stay(9000);
  move(9000, 20000);
  stay(20000);
  return t;
}

poi::PoiIndex MakePoiIndex() {
  std::vector<poi::Poi> pois;
  // A chemical factory at the first stay, a restaurant at the second.
  pois.push_back({0, poi::Category::kChemicalFactory,
                  geo::OffsetMeters(kOrigin, 20.0, 10.0)});
  pois.push_back({1, poi::Category::kRestaurant,
                  geo::OffsetMeters(kOrigin, 9020.0, -10.0)});
  return poi::PoiIndex(std::move(pois));
}

TEST(FeaturesTest, DimensionsAndPoiCounts) {
  const traj::RawTrajectory t = ThreeStayTrajectory();
  const poi::PoiIndex index = MakePoiIndex();
  const auto rows = ExtractPointFeatures(t, index, FeatureOptions());
  ASSERT_EQ(rows.size(), t.points.size());
  ASSERT_EQ(static_cast<int>(rows[0].size()), kFeatureDims);
  // First point sits next to the chemical factory.
  EXPECT_EQ(rows[0][kSpatioTemporalDims +
                    static_cast<int>(poi::Category::kChemicalFactory)],
            1.0f);
  EXPECT_EQ(rows[0][kSpatioTemporalDims +
                    static_cast<int>(poi::Category::kRestaurant)],
            0.0f);
  // Time feature is seconds-of-day.
  EXPECT_GE(rows[0][2], 0.0f);
  EXPECT_LT(rows[0][2], 86400.0f);
}

TEST(FeaturesTest, NoPoiZeroPadsPoiBlock) {
  const traj::RawTrajectory t = ThreeStayTrajectory();
  const poi::PoiIndex index = MakePoiIndex();
  FeatureOptions options;
  options.use_poi = false;
  const auto rows = ExtractPointFeatures(t, index, options);
  ASSERT_EQ(static_cast<int>(rows[0].size()), kFeatureDims);
  for (int c = kSpatioTemporalDims; c < kFeatureDims; ++c) {
    EXPECT_EQ(rows[0][c], 0.0f);
  }
}

TEST(PipelineTest, ProcessesThreeStayTrajectory) {
  const poi::PoiIndex index = MakePoiIndex();
  auto pt = ProcessTrajectory(ThreeStayTrajectory(), index,
                              PipelineOptions(), nullptr);
  ASSERT_TRUE(pt.ok()) << pt.status();
  EXPECT_EQ(pt->num_stays(), 3);
  EXPECT_EQ(pt->candidates.size(), 3u);
  EXPECT_EQ(pt->features.rows(), pt->cleaned.size());
  EXPECT_EQ(pt->features.cols(), kFeatureDims);
}

TEST(PipelineTest, RejectsEmptyAndSingleStay) {
  const poi::PoiIndex index = MakePoiIndex();
  traj::RawTrajectory empty;
  EXPECT_FALSE(ProcessTrajectory(empty, index, PipelineOptions(), nullptr)
                   .ok());
  traj::RawTrajectory one_stay;
  one_stay.trajectory_id = "one";
  int64_t time = 0;
  for (int i = 0; i < 8; ++i) {
    one_stay.points.push_back({kOrigin, time});
    time += 240;
  }
  const auto result =
      ProcessTrajectory(one_stay, index, PipelineOptions(), nullptr);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(PipelineTest, SegmentFeaturesMatchesUnderlyingRows) {
  const poi::PoiIndex index = MakePoiIndex();
  auto pt = ProcessTrajectory(ThreeStayTrajectory(), index,
                              PipelineOptions(), nullptr);
  ASSERT_TRUE(pt.ok());
  const traj::IndexRange range = pt->segmentation.stays[1].range;
  const nn::Variable seg = SegmentFeatures(*pt, range);
  EXPECT_EQ(seg.rows(), range.size());
  for (int r = 0; r < seg.rows(); ++r) {
    for (int c = 0; c < seg.cols(); ++c) {
      EXPECT_EQ(seg.value().at(r, c),
                pt->features.at(range.begin + r, c));
    }
  }
}

// ---- Grouping (paper Table II, n = 5). ----

TEST(GroupingTest, ForwardGroupsMatchTableII) {
  const std::vector<Subgroup> groups = ForwardGroups(5);
  ASSERT_EQ(groups.size(), 4u);
  // g_1 in the paper = candidates starting at stay 0 here (0-based).
  ASSERT_EQ(groups[0].members.size(), 4u);
  EXPECT_EQ(groups[0].members[0], (traj::Candidate{0, 1}));
  EXPECT_EQ(groups[0].members[3], (traj::Candidate{0, 4}));
  ASSERT_EQ(groups[3].members.size(), 1u);
  EXPECT_EQ(groups[3].members[0], (traj::Candidate{3, 4}));
}

TEST(GroupingTest, BackwardGroupsMatchTableII) {
  const std::vector<Subgroup> groups = BackwardGroups(5);
  ASSERT_EQ(groups.size(), 4u);
  // gb_2 in the paper = candidates ending at stay 1 here.
  ASSERT_EQ(groups[0].members.size(), 1u);
  EXPECT_EQ(groups[0].members[0], (traj::Candidate{0, 1}));
  // gb_5: (4,5),(3,5),(2,5),(1,5) in paper numbering -> descending starts.
  ASSERT_EQ(groups[3].members.size(), 4u);
  EXPECT_EQ(groups[3].members[0], (traj::Candidate{3, 4}));
  EXPECT_EQ(groups[3].members[3], (traj::Candidate{0, 4}));
}

class GroupingSweep : public ::testing::TestWithParam<int> {};

TEST_P(GroupingSweep, GroupsPartitionAllCandidates) {
  const int n = GetParam();
  for (const bool forward : {true, false}) {
    const std::vector<Subgroup> groups =
        forward ? ForwardGroups(n) : BackwardGroups(n);
    std::vector<int> seen(traj::NumCandidates(n), 0);
    for (const Subgroup& g : groups) {
      for (const traj::Candidate& c : g.members) {
        seen[traj::CandidateFlatIndex(n, c)] += 1;
      }
    }
    for (int count : seen) EXPECT_EQ(count, 1);
  }
}

TEST_P(GroupingSweep, BackwardFlatIndexIsABijection) {
  const int n = GetParam();
  std::vector<int> seen(traj::NumCandidates(n), 0);
  for (const traj::Candidate& c : traj::GenerateCandidates(n)) {
    const int index = BackwardFlatIndex(n, c);
    ASSERT_GE(index, 0);
    ASSERT_LT(index, traj::NumCandidates(n));
    seen[index] += 1;
  }
  for (int count : seen) EXPECT_EQ(count, 1);
}

TEST_P(GroupingSweep, BackwardFlattenMatchesGroupConcatenation) {
  const int n = GetParam();
  int flat = 0;
  for (const Subgroup& g : BackwardGroups(n)) {
    for (const traj::Candidate& c : g.members) {
      EXPECT_EQ(BackwardFlatIndex(n, c), flat);
      ++flat;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(StayCounts, GroupingSweep,
                         ::testing::Values(2, 3, 5, 9, 14));

// ---- Label processing. ----

class LabelSweep : public ::testing::TestWithParam<int> {};

TEST_P(LabelSweep, LabelsAreSmoothedDistributions) {
  const int n = GetParam();
  const traj::Candidate loaded{0, n - 1};
  for (const bool forward : {true, false}) {
    const std::vector<float> label =
        forward ? ForwardLabel(n, loaded) : BackwardLabel(n, loaded);
    ASSERT_EQ(static_cast<int>(label.size()), traj::NumCandidates(n));
    const float sum = std::accumulate(label.begin(), label.end(), 0.0f);
    EXPECT_NEAR(sum, 1.0f, 1e-5);
    const int hot = forward ? traj::CandidateFlatIndex(n, loaded)
                            : BackwardFlatIndex(n, loaded);
    for (int i = 0; i < static_cast<int>(label.size()); ++i) {
      if (i == hot) {
        EXPECT_GT(label[i], 0.9f);
      } else {
        EXPECT_FLOAT_EQ(label[i], kDefaultLabelEpsilon);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(StayCounts, LabelSweep,
                         ::testing::Values(2, 5, 14));

TEST(TopKTest, OrdersByProbability) {
  Detection detection;
  detection.num_stays = 3;
  detection.candidates = traj::GenerateCandidates(3);  // (0,1),(0,2),(1,2)
  detection.probabilities = {0.2f, 1.0f, 0.5f};
  detection.loaded = detection.candidates[1];
  const auto top2 = TopKCandidates(detection, 2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0].first, (traj::Candidate{0, 2}));
  EXPECT_FLOAT_EQ(top2[0].second, 1.0f);
  EXPECT_EQ(top2[1].first, (traj::Candidate{1, 2}));
  // k clamps to the candidate count; k <= 0 yields nothing.
  EXPECT_EQ(TopKCandidates(detection, 99).size(), 3u);
  EXPECT_TRUE(TopKCandidates(detection, 0).empty());
}

TEST(TopKTest, StableForTies) {
  Detection detection;
  detection.num_stays = 3;
  detection.candidates = traj::GenerateCandidates(3);
  detection.probabilities = {0.5f, 0.5f, 0.5f};
  const auto top = TopKCandidates(detection, 3);
  // Ties keep flatten order.
  EXPECT_EQ(top[0].first, (traj::Candidate{0, 1}));
  EXPECT_EQ(top[1].first, (traj::Candidate{0, 2}));
  EXPECT_EQ(top[2].first, (traj::Candidate{1, 2}));
}

TEST(LabelTest, ForwardAndBackwardMarkSameCandidate) {
  const int n = 6;
  const traj::Candidate loaded{2, 4};
  const std::vector<float> fwd = ForwardLabel(n, loaded);
  const std::vector<float> bwd = BackwardLabel(n, loaded);
  const int fwd_hot = static_cast<int>(
      std::max_element(fwd.begin(), fwd.end()) - fwd.begin());
  const int bwd_hot = static_cast<int>(
      std::max_element(bwd.begin(), bwd.end()) - bwd.begin());
  EXPECT_EQ(fwd_hot, traj::CandidateFlatIndex(n, loaded));
  EXPECT_EQ(bwd_hot, BackwardFlatIndex(n, loaded));
}

}  // namespace
}  // namespace lead::core
