// Unit tests for Status/StatusOr and Rng.
#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"
#include "common/status.h"

namespace lead {
namespace {

TEST(StatusTest, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = InvalidArgumentError("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad input");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(NotFoundError("").code(), StatusCode::kNotFound);
  EXPECT_EQ(FailedPreconditionError("").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRangeError("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(InternalError("").code(), StatusCode::kInternal);
  EXPECT_EQ(IoError("").code(), StatusCode::kIoError);
}

TEST(StatusOrTest, HoldsValue) {
  const StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  const StatusOr<int> v = NotFoundError("missing");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return InvalidArgumentError("not positive");
  return x;
}

Status UseAssignOrReturn(int x, int* out) {
  LEAD_ASSIGN_OR_RETURN(const int value, ParsePositive(x));
  *out = value * 2;
  return Status::Ok();
}

TEST(StatusMacroTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(21, &out).ok());
  EXPECT_EQ(out, 42);
  EXPECT_FALSE(UseAssignOrReturn(-1, &out).ok());
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000000), b.UniformInt(0, 1000000));
  }
}

TEST(RngTest, UniformWithinRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Uniform(-2.0, 3.0);
    EXPECT_GE(x, -2.0);
    EXPECT_LT(x, 3.0);
    const int k = rng.UniformInt(2, 7);
    EXPECT_GE(k, 2);
    EXPECT_LE(k, 7);
  }
}

TEST(RngTest, CategoricalRespectsZeroWeights) {
  Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(rng.Categorical({0.0, 1.0, 0.0}), 1);
  }
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(9);
  Rng child = a.Split();
  // Consuming the child must not equal consuming the parent's next draws.
  Rng b(9);
  Rng child_b = b.Split();
  EXPECT_EQ(child.UniformInt(0, 1 << 30), child_b.UniformInt(0, 1 << 30));
}

TEST(RngTest, GaussianMoments) {
  Rng rng(7);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Gaussian(2.0, 3.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.5);
}

}  // namespace
}  // namespace lead
