// Unit and property tests for the POI substrate and its grid index.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "poi/poi.h"
#include "poi/poi_index.h"

namespace lead::poi {
namespace {

constexpr geo::LatLng kOrigin{32.0, 120.9};

std::vector<Poi> RandomPois(int count, double extent_m, uint64_t seed) {
  Rng rng(seed);
  std::vector<Poi> pois;
  pois.reserve(count);
  for (int i = 0; i < count; ++i) {
    Poi p;
    p.id = i;
    p.category = static_cast<Category>(rng.UniformInt(0, kNumCategories - 1));
    p.pos = geo::OffsetMeters(kOrigin, rng.Uniform(-extent_m, extent_m),
                              rng.Uniform(-extent_m, extent_m));
    pois.push_back(p);
  }
  return pois;
}

TEST(PoiTest, CategoryNamesAreUniqueAndNonEmpty) {
  std::set<std::string> names;
  for (int c = 0; c < kNumCategories; ++c) {
    const std::string name = CategoryName(static_cast<Category>(c));
    EXPECT_FALSE(name.empty());
    EXPECT_TRUE(names.insert(name).second) << "duplicate: " << name;
  }
}

TEST(PoiIndexTest, EmptyCorpus) {
  const PoiIndex index({});
  EXPECT_EQ(index.size(), 0);
  EXPECT_FALSE(index.AnyWithin(kOrigin, 1000.0));
  const CategoryCounts counts = index.CountByCategory(kOrigin, 1000.0);
  for (int c : counts) EXPECT_EQ(c, 0);
}

TEST(PoiIndexTest, SinglePoiExactRadius) {
  Poi p;
  p.id = 1;
  p.category = Category::kChemicalFactory;
  p.pos = geo::OffsetMeters(kOrigin, 100.0, 0.0);
  const PoiIndex index({p});
  EXPECT_TRUE(index.AnyWithin(kOrigin, 101.0));
  EXPECT_FALSE(index.AnyWithin(kOrigin, 99.0));
  const CategoryCounts counts = index.CountByCategory(kOrigin, 150.0);
  EXPECT_EQ(counts[static_cast<int>(Category::kChemicalFactory)], 1);
}

class PoiIndexSweep
    : public ::testing::TestWithParam<std::tuple<int, double, double>> {};

TEST_P(PoiIndexSweep, MatchesBruteForce) {
  const auto [count, extent_m, radius_m] = GetParam();
  const std::vector<Poi> pois = RandomPois(count, extent_m, 99 + count);
  const PoiIndex index(std::vector<Poi>(pois), /*cell_size_m=*/250.0);
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const geo::LatLng center = geo::OffsetMeters(
        kOrigin, rng.Uniform(-extent_m, extent_m),
        rng.Uniform(-extent_m, extent_m));
    // Brute force.
    CategoryCounts expected{};
    int expected_total = 0;
    for (const Poi& p : pois) {
      if (geo::DistanceMeters(center, p.pos) <= radius_m) {
        ++expected[static_cast<int>(p.category)];
        ++expected_total;
      }
    }
    const CategoryCounts actual = index.CountByCategory(center, radius_m);
    EXPECT_EQ(actual, expected);
    EXPECT_EQ(static_cast<int>(index.QueryWithin(center, radius_m).size()),
              expected_total);
    EXPECT_EQ(index.AnyWithin(center, radius_m), expected_total > 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpora, PoiIndexSweep,
    ::testing::Values(std::tuple<int, double, double>{50, 2000, 100},
                      std::tuple<int, double, double>{500, 5000, 100},
                      std::tuple<int, double, double>{500, 5000, 500},
                      std::tuple<int, double, double>{2000, 10000, 500},
                      std::tuple<int, double, double>{200, 1000, 3000}));

TEST(PoiIndexTest, QueryWithinReturnsCorrectIds) {
  std::vector<Poi> pois;
  for (int i = 0; i < 5; ++i) {
    Poi p;
    p.id = i;
    p.category = Category::kShop;
    p.pos = geo::OffsetMeters(kOrigin, i * 1000.0, 0.0);
    pois.push_back(p);
  }
  const PoiIndex index(std::move(pois));
  const std::vector<int> near = index.QueryWithin(kOrigin, 1500.0);
  std::set<int64_t> ids;
  for (int i : near) ids.insert(index.pois()[i].id);
  EXPECT_EQ(ids, (std::set<int64_t>{0, 1}));
}

TEST(PoiIndexTest, NegativeRadiusIsEmpty) {
  const PoiIndex index(RandomPois(10, 500, 3));
  EXPECT_TRUE(index.QueryWithin(kOrigin, -1.0).empty());
}

TEST(PoiIndexTest, ConcurrentRadiusQueriesMatchSerialResults) {
  // The index is immutable after construction, so the parallel feature
  // extractor issues radius queries from every pool lane concurrently.
  // Hammer it from all lanes and check each answer against a serial
  // baseline computed up front; under TSan this doubles as the race
  // detector for the read path.
  const int kQueries = 2000;
  const double kExtent = 5000.0;
  const PoiIndex index(RandomPois(1500, kExtent, 1234));
  std::vector<geo::LatLng> centers;
  std::vector<double> radii;
  Rng rng(77);
  centers.reserve(kQueries);
  radii.reserve(kQueries);
  for (int q = 0; q < kQueries; ++q) {
    centers.push_back(geo::OffsetMeters(kOrigin,
                                        rng.Uniform(-kExtent, kExtent),
                                        rng.Uniform(-kExtent, kExtent)));
    radii.push_back(rng.Uniform(50.0, 800.0));
  }
  std::vector<CategoryCounts> serial(kQueries);
  std::vector<int> serial_within(kQueries);
  for (int q = 0; q < kQueries; ++q) {
    serial[q] = index.CountByCategory(centers[q], radii[q]);
    serial_within[q] =
        static_cast<int>(index.QueryWithin(centers[q], radii[q]).size());
  }
  for (const int lanes : {2, 4, 8}) {
    std::vector<int> mismatches(kQueries, 0);
    ThreadPool::Global().ParallelFor(kQueries, lanes, [&](int64_t q) {
      const CategoryCounts counts =
          index.CountByCategory(centers[q], radii[q]);
      const int within =
          static_cast<int>(index.QueryWithin(centers[q], radii[q]).size());
      const bool any = index.AnyWithin(centers[q], radii[q]);
      if (counts != serial[q] || within != serial_within[q] ||
          any != (serial_within[q] > 0)) {
        mismatches[q] = 1;
      }
    });
    for (int q = 0; q < kQueries; ++q) {
      EXPECT_EQ(mismatches[q], 0) << "query " << q << " with " << lanes
                                  << " lanes";
    }
  }
}

}  // namespace
}  // namespace lead::poi
