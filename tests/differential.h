// Differential-oracle comparison helpers (DESIGN.md §"Fast execution
// strategy").
//
// ExecStrategy::kFast is not bit-deterministic against the deterministic
// oracle, so fast-mode tests assert a weaker — but still sharp —
// contract: identical detection decisions, probabilities within a
// documented absolute tolerance (with ULP distances reported for the
// worst offender), and training-loss trajectories within relative +
// absolute epsilon bands. The helpers return ::testing::AssertionResult
// so a failing sweep names the exact index, values, and distances
// instead of a bare boolean.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <sstream>
#include <vector>

#include "core/lead.h"
#include "gtest/gtest.h"

namespace lead::diff {

// Distance in representable floats between a and b (0 for identical
// bits, including -0.0 vs 0.0 which are one step apart in this metric's
// monotone mapping; returns INT64_MAX when either value is not finite).
inline int64_t UlpDiff(float a, float b) {
  if (!std::isfinite(a) || !std::isfinite(b)) {
    return std::numeric_limits<int64_t>::max();
  }
  int32_t ia = 0;
  int32_t ib = 0;
  std::memcpy(&ia, &a, sizeof(ia));
  std::memcpy(&ib, &b, sizeof(ib));
  // Map the sign-magnitude float ordering onto a monotone integer line
  // so the distance is well-defined across zero.
  const auto monotone = [](int32_t i) -> int64_t {
    return i >= 0 ? static_cast<int64_t>(i)
                  : -(static_cast<int64_t>(i & 0x7fffffff));
  };
  const int64_t d = monotone(ia) - monotone(ib);
  return d < 0 ? -d : d;
}

// Decision equivalence: both runs picked the same loaded trajectory
// (the externally visible answer) over the same candidate set.
inline ::testing::AssertionResult SameDecision(const core::Detection& ref,
                                               const core::Detection& got) {
  if (ref.num_stays != got.num_stays) {
    return ::testing::AssertionFailure()
           << "stay counts differ: oracle " << ref.num_stays << " vs fast "
           << got.num_stays;
  }
  if (ref.candidates.size() != got.candidates.size()) {
    return ::testing::AssertionFailure()
           << "candidate counts differ: oracle " << ref.candidates.size()
           << " vs fast " << got.candidates.size();
  }
  if (ref.loaded.start_sp != got.loaded.start_sp ||
      ref.loaded.end_sp != got.loaded.end_sp) {
    return ::testing::AssertionFailure()
           << "decisions differ: oracle picked (" << ref.loaded.start_sp
           << ", " << ref.loaded.end_sp << "), fast picked ("
           << got.loaded.start_sp << ", " << got.loaded.end_sp << ")";
  }
  return ::testing::AssertionSuccess();
}

// Element-wise probability agreement within `abs_tol`, reporting the
// worst offender's index, both values, and the absolute + ULP distances.
inline ::testing::AssertionResult ProbsWithin(const std::vector<float>& ref,
                                              const std::vector<float>& got,
                                              float abs_tol) {
  if (ref.size() != got.size()) {
    return ::testing::AssertionFailure()
           << "probability vector sizes differ: " << ref.size() << " vs "
           << got.size();
  }
  float worst = 0.0f;
  size_t worst_i = 0;
  for (size_t i = 0; i < ref.size(); ++i) {
    if (!std::isfinite(ref[i]) || !std::isfinite(got[i])) {
      return ::testing::AssertionFailure()
             << "non-finite probability at index " << i << ": oracle "
             << ref[i] << ", fast " << got[i];
    }
    const float d = std::fabs(ref[i] - got[i]);
    if (d > worst) {
      worst = d;
      worst_i = i;
    }
  }
  if (worst > abs_tol) {
    std::ostringstream msg;
    msg << "worst probability diff " << worst << " at index " << worst_i
        << " exceeds tolerance " << abs_tol << " (oracle " << ref[worst_i]
        << ", fast " << got[worst_i] << ", "
        << UlpDiff(ref[worst_i], got[worst_i]) << " ULPs)";
    return ::testing::AssertionFailure() << msg.str();
  }
  return ::testing::AssertionSuccess();
}

// Loss-trajectory agreement: curves of equal length whose points match
// within the band abs_tol + rel_tol * |ref|. Early stopping makes curve
// LENGTH part of the contract too — a fast run that stops on a different
// epoch diverged more than any per-point epsilon can excuse.
inline ::testing::AssertionResult LossesWithin(const std::vector<float>& ref,
                                               const std::vector<float>& got,
                                               float rel_tol, float abs_tol) {
  if (ref.size() != got.size()) {
    return ::testing::AssertionFailure()
           << "loss curve lengths differ: oracle " << ref.size()
           << " epochs vs fast " << got.size();
  }
  for (size_t i = 0; i < ref.size(); ++i) {
    if (!std::isfinite(ref[i]) || !std::isfinite(got[i])) {
      return ::testing::AssertionFailure()
             << "non-finite loss at epoch " << i << ": oracle " << ref[i]
             << ", fast " << got[i];
    }
    const float band = abs_tol + rel_tol * std::fabs(ref[i]);
    const float d = std::fabs(ref[i] - got[i]);
    if (d > band) {
      return ::testing::AssertionFailure()
             << "loss at epoch " << i << " outside band: oracle " << ref[i]
             << ", fast " << got[i] << ", |diff| " << d << " > " << band
             << " (rel_tol " << rel_tol << ", abs_tol " << abs_tol << ")";
    }
  }
  return ::testing::AssertionSuccess();
}

}  // namespace lead::diff
