// Tests for CSV persistence.
#include <sstream>

#include <gtest/gtest.h>

#include "common/fault.h"
#include "io/csv.h"

namespace lead::io {
namespace {

std::vector<traj::RawTrajectory> SampleTrajectories() {
  std::vector<traj::RawTrajectory> trajectories(2);
  trajectories[0].trajectory_id = "t1";
  trajectories[0].truck_id = "truck_a";
  trajectories[0].points = {
      {{32.0123456, 120.9876543}, 1000},
      {{32.0130000, 120.9880000}, 1120},
  };
  trajectories[1].trajectory_id = "t2";
  trajectories[1].truck_id = "truck_b";
  trajectories[1].points = {
      {{31.95, 120.80}, 2000},
  };
  return trajectories;
}

TEST(TrajectoryCsvTest, RoundTrips) {
  const auto original = SampleTrajectories();
  std::stringstream buffer;
  ASSERT_TRUE(WriteTrajectories(original, buffer).ok());
  auto loaded = ReadTrajectories(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ((*loaded)[0].trajectory_id, "t1");
  EXPECT_EQ((*loaded)[0].truck_id, "truck_a");
  ASSERT_EQ((*loaded)[0].points.size(), 2u);
  EXPECT_NEAR((*loaded)[0].points[0].pos.lat, 32.0123456, 1e-6);
  EXPECT_EQ((*loaded)[0].points[1].t, 1120);
  EXPECT_EQ((*loaded)[1].points.size(), 1u);
}

TEST(TrajectoryCsvTest, RejectsMissingHeader) {
  std::stringstream buffer("a,b,1,2,3\n");
  EXPECT_FALSE(ReadTrajectories(buffer).ok());
}

TEST(TrajectoryCsvTest, RejectsNonContiguousRows) {
  std::stringstream buffer(
      "trajectory_id,truck_id,lat,lng,t\n"
      "t1,a,32.0,120.9,100\n"
      "t2,b,32.0,120.9,100\n"
      "t1,a,32.0,120.9,200\n");
  const auto result = ReadTrajectories(buffer);
  EXPECT_FALSE(result.ok());
}

TEST(TrajectoryCsvTest, RejectsNonIncreasingTimestamps) {
  std::stringstream buffer(
      "trajectory_id,truck_id,lat,lng,t\n"
      "t1,a,32.0,120.9,100\n"
      "t1,a,32.0,120.9,100\n");
  EXPECT_FALSE(ReadTrajectories(buffer).ok());
}

TEST(TrajectoryCsvTest, TruncatedFinalRecordIsDiagnosedWithLineNumber) {
  // A file cut off mid-record (no trailing newline, half the fields):
  // the error names the line and flags the missing terminator.
  std::stringstream truncated(
      "trajectory_id,truck_id,lat,lng,t\n"
      "t1,a,32.0,120.9,100\n"
      "t1,a,32.0,120");
  const auto result = ReadTrajectories(truncated);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("at line 3"), std::string::npos)
      << result.status().ToString();
  EXPECT_NE(result.status().message().find("truncated"), std::string::npos)
      << result.status().ToString();
}

TEST(TrajectoryCsvTest, WellFormedUnterminatedFinalLineIsAccepted) {
  // Plenty of tools drop the last newline; a complete final record must
  // still parse.
  std::stringstream buffer(
      "trajectory_id,truck_id,lat,lng,t\n"
      "t1,a,32.0,120.9,100\n"
      "t1,a,32.1,120.8,200");
  const auto result = ReadTrajectories(buffer);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0].points.size(), 2u);
}

TEST(TrajectoryCsvTest, RejectsGarbageFields) {
  std::stringstream buffer(
      "trajectory_id,truck_id,lat,lng,t\n"
      "t1,a,not_a_number,120.9,100\n");
  EXPECT_FALSE(ReadTrajectories(buffer).ok());
  std::stringstream missing(
      "trajectory_id,truck_id,lat,lng,t\n"
      "t1,a,32.0,120.9\n");
  EXPECT_FALSE(ReadTrajectories(missing).ok());
}

TEST(TrajectoryCsvTest, RejectsNonFiniteAndOffPlanetCoordinates) {
  // from_chars parses "nan"/"inf", so the reader must reject them
  // explicitly, with the offending line number in the diagnostic.
  for (const char* row :
       {"t1,a,nan,120.9,100", "t1,a,32.0,inf,100", "t1,a,91.0,120.9,100",
        "t1,a,32.0,-180.5,100"}) {
    std::stringstream buffer(std::string("trajectory_id,truck_id,lat,lng,t\n") +
                             row + "\n");
    const auto result = ReadTrajectories(buffer);
    ASSERT_FALSE(result.ok()) << row;
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(result.status().message().find("line 2"), std::string::npos)
        << result.status();
  }
}

TEST(TrajectoryCsvTest, RejectsOutOfRangeTimestamps) {
  for (const char* row : {"t1,a,32.0,120.9,-5", "t1,a,32.0,120.9,9999999999"}) {
    std::stringstream buffer(std::string("trajectory_id,truck_id,lat,lng,t\n") +
                             row + "\n");
    const auto result = ReadTrajectories(buffer);
    ASSERT_FALSE(result.ok()) << row;
    EXPECT_NE(result.status().message().find("timestamp out of range"),
              std::string::npos)
        << result.status();
  }
}

TEST(TrajectoryCsvTest, InjectedRowFaultSurfacesBadRowDiagnostic) {
  if (!fault::Enabled()) GTEST_SKIP() << "fault injection compiled out";
  fault::ArmFail("csv.row", 2);  // second data row
  std::stringstream buffer(
      "trajectory_id,truck_id,lat,lng,t\n"
      "t1,a,32.0,120.9,100\n"
      "t1,a,32.1,120.9,200\n"
      "t1,a,32.2,120.9,300\n");
  const auto result = ReadTrajectories(buffer);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("injected fault: csv.row"),
            std::string::npos)
      << result.status();
  EXPECT_NE(result.status().message().find("line 3"), std::string::npos)
      << result.status();
  EXPECT_EQ(fault::Fires("csv.row"), 1);
  fault::DisarmAll();
  // Disarmed, the same stream parses cleanly.
  std::stringstream clean(
      "trajectory_id,truck_id,lat,lng,t\n"
      "t1,a,32.0,120.9,100\n"
      "t1,a,32.1,120.9,200\n"
      "t1,a,32.2,120.9,300\n");
  EXPECT_TRUE(ReadTrajectories(clean).ok());
}

TEST(PoiCsvTest, RoundTrips) {
  std::vector<poi::Poi> pois = {
      {7, poi::Category::kChemicalFactory, {32.01, 120.98}},
      {8, poi::Category::kRestaurant, {31.99, 120.91}},
  };
  std::stringstream buffer;
  ASSERT_TRUE(WritePois(pois, buffer).ok());
  auto loaded = ReadPois(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ((*loaded)[0].id, 7);
  EXPECT_EQ((*loaded)[0].category, poi::Category::kChemicalFactory);
  EXPECT_EQ((*loaded)[1].category, poi::Category::kRestaurant);
  EXPECT_NEAR((*loaded)[1].pos.lng, 120.91, 1e-6);
}

TEST(PoiCsvTest, RejectsNonFiniteCoordinates) {
  std::stringstream buffer(
      "id,category,lat,lng\n"
      "1,gas_station,inf,120.9\n");
  const auto result = ReadPois(buffer);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 2"), std::string::npos)
      << result.status();
}

TEST(PoiCsvTest, RejectsUnknownCategory) {
  std::stringstream buffer(
      "id,category,lat,lng\n"
      "1,flying_saucer_pad,32.0,120.9\n");
  EXPECT_FALSE(ReadPois(buffer).ok());
}

TEST(PoiCsvTest, CategoryNameRoundTripsForAllCategories) {
  for (int c = 0; c < poi::kNumCategories; ++c) {
    const auto category = static_cast<poi::Category>(c);
    auto parsed = CategoryFromName(poi::CategoryName(category));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, category);
  }
  EXPECT_FALSE(CategoryFromName("nope").ok());
}

TEST(LabelCsvTest, RoundTrips) {
  LabelMap labels = {
      {"t1", traj::Candidate{1, 4}},
      {"t2", traj::Candidate{0, 2}},
  };
  std::stringstream buffer;
  ASSERT_TRUE(WriteLabels(labels, buffer).ok());
  auto loaded = ReadLabels(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->size(), 2u);
  EXPECT_EQ(loaded->at("t1"), (traj::Candidate{1, 4}));
  EXPECT_EQ(loaded->at("t2"), (traj::Candidate{0, 2}));
}

TEST(LabelCsvTest, TruncatedFinalRecordIsDiagnosedWithLineNumber) {
  std::stringstream truncated(
      "trajectory_id,loading_sp,unloading_sp\n"
      "t1,1,3\n"
      "t2,1");
  const auto result = ReadLabels(truncated);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("at line 3"), std::string::npos)
      << result.status().ToString();
  EXPECT_NE(result.status().message().find("truncated"), std::string::npos)
      << result.status().ToString();
}

TEST(LabelCsvTest, RejectsInvalidPairsAndDuplicates) {
  std::stringstream reversed(
      "trajectory_id,loading_sp,unloading_sp\n"
      "t1,4,1\n");
  EXPECT_FALSE(ReadLabels(reversed).ok());
  std::stringstream duplicate(
      "trajectory_id,loading_sp,unloading_sp\n"
      "t1,0,1\n"
      "t1,0,2\n");
  EXPECT_FALSE(ReadLabels(duplicate).ok());
}

TEST(FileIoTest, RoundTripsThroughDisk) {
  const std::string dir = ::testing::TempDir();
  const auto original = SampleTrajectories();
  ASSERT_TRUE(
      WriteTrajectoriesToFile(original, dir + "/io_test_traj.csv").ok());
  auto loaded = ReadTrajectoriesFromFile(dir + "/io_test_traj.csv");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), original.size());
  EXPECT_FALSE(ReadTrajectoriesFromFile("/nonexistent/nope.csv").ok());
}

}  // namespace
}  // namespace lead::io
