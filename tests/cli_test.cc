// End-to-end test of the lead_cli tool: simulate -> train -> evaluate ->
// detect, exercised through the real binary (path injected by CMake).
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

namespace {

#ifndef LEAD_CLI_PATH
#define LEAD_CLI_PATH ""
#endif

std::string CliPath() { return LEAD_CLI_PATH; }

// Runs a command, captures combined stdout/stderr, returns exit code.
int RunCommand(const std::string& command, std::string* output) {
  output->clear();
  FILE* pipe = popen((command + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return -1;
  char buffer[512];
  while (fgets(buffer, sizeof(buffer), pipe) != nullptr) {
    *output += buffer;
  }
  const int status = pclose(pipe);
  return WEXITSTATUS(status);
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

class CliEndToEnd : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_FALSE(CliPath().empty()) << "LEAD_CLI_PATH not configured";
    dir_ = ::testing::TempDir() + "/lead_cli_corpus";
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_F(CliEndToEnd, SimulateTrainEvaluateDetect) {
  std::string out;
  // Tiny corpus and schedule: this exercises plumbing, not accuracy.
  ASSERT_EQ(RunCommand(CliPath() + " simulate --out " + dir_ +
                    " --trajectories 40 --trucks 20 --seed 5",
                &out),
            0)
      << out;
  EXPECT_NE(out.find("wrote 40 trajectories"), std::string::npos) << out;
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/trajectories.csv"));
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/pois.csv"));
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/labels.csv"));

  const std::string model = dir_ + "/model.bin";
  const std::string trace = dir_ + "/trace.json";
  const std::string metrics = dir_ + "/metrics.json";
  ASSERT_EQ(RunCommand(CliPath() + " train --data " + dir_ + " --model " + model +
                    " --ae-epochs 1 --det-epochs 2 --trace-out " + trace +
                    " --metrics-out " + metrics + " --log-level warn",
                &out),
            0)
      << out;
  EXPECT_NE(out.find("model written"), std::string::npos) << out;
  EXPECT_TRUE(std::filesystem::exists(model));
  // The observability flags must leave behind a Chrome-format trace and a
  // metrics snapshot that carries the training loss series.
  ASSERT_TRUE(std::filesystem::exists(trace));
  ASSERT_TRUE(std::filesystem::exists(metrics));
  const std::string trace_json = ReadFile(trace);
  EXPECT_NE(trace_json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace_json.find("\"cat\":\"preprocess\""), std::string::npos);
  EXPECT_NE(trace_json.find("\"cat\":\"ae\""), std::string::npos);
  EXPECT_NE(trace_json.find("\"cat\":\"det\""), std::string::npos);
  const std::string metrics_json = ReadFile(metrics);
  EXPECT_NE(metrics_json.find("train.autoencoder.loss"), std::string::npos);
  EXPECT_NE(metrics_json.find("stage.preprocess.us"), std::string::npos);

  ASSERT_EQ(RunCommand(CliPath() + " evaluate --data " + dir_ + " --model " + model,
                &out),
            0)
      << out;
  EXPECT_NE(out.find("LEAD"), std::string::npos) << out;
  EXPECT_NE(out.find("3~14"), std::string::npos) << out;

  // Detect with a generous deadline: the run must finish normally and
  // the metrics snapshot must carry the robustness instrumentation
  // (shed/cancel counters and the deadline-margin histogram are
  // registered eagerly so dashboards see zeros, not absences).
  const std::string detect_metrics = dir_ + "/detect_metrics.json";
  ASSERT_EQ(RunCommand(CliPath() + " detect --data " + dir_ + " --model " +
                    model + " --deadline-ms 60000 --metrics-out " +
                    detect_metrics,
                &out),
            0)
      << out;
  EXPECT_NE(out.find("detected loaded trajectory"), std::string::npos)
      << out;
  ASSERT_TRUE(std::filesystem::exists(detect_metrics));
  const std::string detect_json = ReadFile(detect_metrics);
  EXPECT_NE(detect_json.find("lead.detect.shed"), std::string::npos);
  EXPECT_NE(detect_json.find("lead.cancel.deadline"), std::string::npos);
  EXPECT_NE(detect_json.find("lead.cancel.user"), std::string::npos);
  EXPECT_NE(detect_json.find("lead.cancel.budget"), std::string::npos);
  EXPECT_NE(detect_json.find("lead.cancel.fault"), std::string::npos);
  EXPECT_NE(detect_json.find("lead.stage.deadline_margin_us"),
            std::string::npos);
}

TEST_F(CliEndToEnd, UsageAndErrorPaths) {
  std::string out;
  EXPECT_NE(RunCommand(CliPath(), &out), 0);
  EXPECT_NE(out.find("usage"), std::string::npos);
  EXPECT_NE(RunCommand(CliPath() + " frobnicate", &out), 0);
  // Train without data: usage error.
  EXPECT_NE(RunCommand(CliPath() + " train --model /tmp/x.bin", &out), 0);
  // Unknown log level: rejected up front, before any training work.
  EXPECT_NE(RunCommand(CliPath() + " train --data /tmp --model /tmp/x.bin" +
                           " --log-level shouty",
                       &out),
            0);
  EXPECT_NE(out.find("bad log level"), std::string::npos) << out;
  // Detect with a missing model file: IO error surfaced.
  ASSERT_EQ(RunCommand(CliPath() + " simulate --out " + dir_ +
                    " --trajectories 12 --trucks 6",
                &out),
            0)
      << out;
  EXPECT_NE(RunCommand(CliPath() + " detect --data " + dir_ +
                           " --model /nonexistent.bin",
                       &out),
            0);
  EXPECT_NE(out.find("error"), std::string::npos);
}

}  // namespace
