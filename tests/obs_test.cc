// Observability layer tests: the emitted Chrome trace JSON must be
// well-formed and round-trip span args, concurrent span emission from
// eight threads must lose and tear nothing, striped metrics must merge
// exactly, and the logger must filter by level without evaluating the
// stream arguments of suppressed messages.
//
// This file carries its own minimal recursive-descent JSON parser
// (independent of the GeoJSON reader in src/io) — strict enough to
// reject malformed output, small enough to audit.
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace lead {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON value + parser.

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool bool_value = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool Has(const std::string& key) const {
    return type == Type::kObject && object.count(key) > 0;
  }
  const JsonValue& At(const std::string& key) const {
    static const JsonValue kNullValue;
    auto it = object.find(key);
    return it == object.end() ? kNullValue : it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    SkipSpace();
    if (!ParseValue(out)) return false;
    SkipSpace();
    return pos_ == text_.size();  // no trailing garbage
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool Literal(const char* word, size_t len) {
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  bool ParseValue(JsonValue* out) {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return ParseObject(out);
      case '[': return ParseArray(out);
      case '"':
        out->type = JsonValue::Type::kString;
        return ParseString(&out->string);
      case 't':
        out->type = JsonValue::Type::kBool;
        out->bool_value = true;
        return Literal("true", 4);
      case 'f':
        out->type = JsonValue::Type::kBool;
        out->bool_value = false;
        return Literal("false", 5);
      case 'n':
        out->type = JsonValue::Type::kNull;
        return Literal("null", 4);
      default: return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out) {
    out->type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      SkipSpace();
      if (!ParseValue(&out->object[key])) return false;
      SkipSpace();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool ParseArray(JsonValue* out) {
    out->type = JsonValue::Type::kArray;
    ++pos_;  // '['
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      out->array.emplace_back();
      if (!ParseValue(&out->array.back())) return false;
      SkipSpace();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u':
          if (pos_ + 4 > text_.size()) return false;
          pos_ += 4;          // tests only need structure, not the code
          out->push_back('?');  // point itself
          break;
        default: return false;
      }
    }
    return false;  // unterminated
  }

  bool ParseNumber(JsonValue* out) {
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    out->type = JsonValue::Type::kNumber;
    out->number = std::strtod(start, &end);
    if (end == start) return false;
    pos_ += static_cast<size_t>(end - start);
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

bool ParseJson(const std::string& text, JsonValue* out) {
  return JsonParser(text).Parse(out);
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

// Parses the tracer's current JSON and returns the traceEvents array.
std::vector<JsonValue> TraceEvents() {
  const std::string json = obs::Tracer::Global().ToJson();
  JsonValue doc;
  EXPECT_TRUE(ParseJson(json, &doc)) << json.substr(0, 400);
  EXPECT_EQ(doc.At("displayTimeUnit").string, "ms");
  EXPECT_TRUE(doc.Has("otherData"));
  return doc.At("traceEvents").array;
}

// ---------------------------------------------------------------------------
// Tracer.

TEST(TraceTest, DisabledScopeRecordsNothing) {
  obs::Tracer& tracer = obs::Tracer::Global();
  ASSERT_FALSE(tracer.enabled());
  const uint64_t before = tracer.EventCount();
  for (int i = 0; i < 100; ++i) {
    LEAD_TRACE_SCOPE(obs::kCatPool, "disabled_span");
  }
  EXPECT_EQ(tracer.EventCount(), before);
}

TEST(TraceTest, JsonIsValidAndRoundTripsArgs) {
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Start();
  {
    obs::ScopedSpan span(obs::kCatIo, "unit_span");
    span.Arg("answer", 42.0);
    span.Arg("half", 0.5);
  }
  tracer.Stop();
  EXPECT_EQ(tracer.EventCount(), 1u);
  EXPECT_EQ(tracer.DroppedCount(), 0u);

  const std::vector<JsonValue> events = TraceEvents();
  bool found_process_name = false;
  const JsonValue* span_event = nullptr;
  for (const JsonValue& event : events) {
    if (event.At("ph").string == "M" &&
        event.At("name").string == "process_name") {
      found_process_name = true;
      EXPECT_EQ(event.At("args").At("name").string, "lead");
    }
    if (event.At("name").string == "unit_span") span_event = &event;
  }
  EXPECT_TRUE(found_process_name);
  ASSERT_NE(span_event, nullptr);
  EXPECT_EQ(span_event->At("ph").string, "X");
  EXPECT_EQ(span_event->At("cat").string, obs::kCatIo);
  EXPECT_EQ(span_event->At("pid").number, 1.0);
  EXPECT_TRUE(span_event->Has("tid"));
  EXPECT_TRUE(span_event->Has("ts"));
  EXPECT_TRUE(span_event->Has("dur"));
  EXPECT_GE(span_event->At("dur").number, 0.0);
  EXPECT_EQ(span_event->At("args").At("answer").number, 42.0);
  EXPECT_EQ(span_event->At("args").At("half").number, 0.5);
}

TEST(TraceTest, EightThreadsLoseAndTearNothing) {
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 512;
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Start();
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      obs::Tracer::Global().SetCurrentThreadName("obs-test-" +
                                                 std::to_string(t));
      for (int j = 0; j < kSpansPerThread; ++j) {
        obs::ScopedSpan span(obs::kCatPool, "worker_span");
        span.Arg("t", t);
        span.Arg("j", j);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  tracer.Stop();
  EXPECT_EQ(tracer.EventCount(),
            static_cast<uint64_t>(kThreads) * kSpansPerThread);
  EXPECT_EQ(tracer.DroppedCount(), 0u);

  // Every span must come back complete: right name/cat, both args, and a
  // (t, j) pair seen exactly once — a torn or overwritten slot would
  // duplicate or corrupt one.
  const std::vector<JsonValue> events = TraceEvents();
  std::map<int, std::set<int>> seen;       // t -> {j}
  std::map<int, std::set<double>> lanes;   // t -> {tid}
  std::set<std::string> thread_names;
  for (const JsonValue& event : events) {
    if (event.At("ph").string == "M" &&
        event.At("name").string == "thread_name") {
      thread_names.insert(event.At("args").At("name").string);
    }
    if (event.At("name").string != "worker_span") continue;
    EXPECT_EQ(event.At("ph").string, "X");
    EXPECT_EQ(event.At("cat").string, obs::kCatPool);
    const int t = static_cast<int>(event.At("args").At("t").number);
    const int j = static_cast<int>(event.At("args").At("j").number);
    ASSERT_GE(t, 0);
    ASSERT_LT(t, kThreads);
    ASSERT_GE(j, 0);
    ASSERT_LT(j, kSpansPerThread);
    EXPECT_TRUE(seen[t].insert(j).second)
        << "duplicate span t=" << t << " j=" << j;
    lanes[t].insert(event.At("tid").number);
  }
  ASSERT_EQ(seen.size(), static_cast<size_t>(kThreads));
  std::set<double> distinct_tids;
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(seen[t].size(), static_cast<size_t>(kSpansPerThread))
        << "lost spans from thread " << t;
    // True per-thread attribution: one lane per emitting thread.
    ASSERT_EQ(lanes[t].size(), 1u);
    distinct_tids.insert(*lanes[t].begin());
    EXPECT_EQ(thread_names.count("obs-test-" + std::to_string(t)), 1u);
  }
  EXPECT_EQ(distinct_tids.size(), static_cast<size_t>(kThreads));
}

TEST(TraceTest, SpanStraddlingStopIsDropped) {
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Start();
  {
    obs::ScopedSpan span(obs::kCatIo, "straddler");
    tracer.Stop();
  }  // finishes with tracing off; must not touch published slots
  EXPECT_EQ(tracer.EventCount(), 0u);
}

// ---------------------------------------------------------------------------
// Metrics.

TEST(MetricsTest, CounterMergesConcurrentIncrements) {
  constexpr int kThreads = 8;
  constexpr int kIncrements = 4096;
  obs::Counter& counter = obs::GetCounter("obs_test.counter");
  counter.Reset();
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIncrements; ++i) counter.Increment();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(), int64_t{kThreads} * kIncrements);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0);
}

TEST(MetricsTest, HistogramMergesStripesAndBuckets) {
  constexpr int kThreads = 4;
  constexpr int kRounds = 100;
  obs::Histogram& hist =
      obs::GetHistogram("obs_test.hist", {1.0, 10.0, 100.0});
  hist.Reset();
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist] {
      for (int i = 0; i < kRounds; ++i) {
        hist.Observe(0.5);
        hist.Observe(5.0);
        hist.Observe(50.0);
        hist.Observe(500.0);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const obs::Histogram::Snapshot snap = hist.Snap();
  const int64_t per_bucket = int64_t{kThreads} * kRounds;
  EXPECT_EQ(snap.count, 4 * per_bucket);
  ASSERT_EQ(snap.bounds.size(), 3u);
  ASSERT_EQ(snap.bucket_counts.size(), 4u);
  for (int b = 0; b < 4; ++b) {
    EXPECT_EQ(snap.bucket_counts[b], per_bucket) << "bucket " << b;
  }
  // All observed values are exactly representable, so the merged sum and
  // extrema are exact regardless of interleaving.
  EXPECT_EQ(snap.min, 0.5);
  EXPECT_EQ(snap.max, 500.0);
  EXPECT_EQ(snap.sum, 555.5 * static_cast<double>(per_bucket));
}

TEST(MetricsTest, GaugeAndSeriesBasics) {
  obs::Gauge& gauge = obs::GetGauge("obs_test.gauge");
  gauge.Set(2.5);
  gauge.Add(1.5);
  EXPECT_EQ(gauge.Value(), 4.0);
  gauge.Reset();
  EXPECT_EQ(gauge.Value(), 0.0);

  obs::Series series(/*capacity=*/4);
  for (int i = 0; i < 6; ++i) series.Append(i);
  const std::vector<double> values = series.Values();
  ASSERT_EQ(values.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(values[i], i);
  EXPECT_EQ(series.dropped(), 2u);
  series.Reset();
  EXPECT_TRUE(series.Values().empty());
  EXPECT_EQ(series.dropped(), 0u);
}

TEST(MetricsTest, JsonExportParsesAndCarriesValues) {
  obs::GetCounter("obs_test.json.counter").Reset();
  obs::GetCounter("obs_test.json.counter").Add(3);
  obs::GetGauge("obs_test.json.gauge").Set(2.5);
  obs::Histogram& hist = obs::GetHistogram("obs_test.json.hist", {10.0});
  hist.Reset();
  hist.Observe(4.0);
  obs::Series& series = obs::GetSeries("obs_test.json.series");
  series.Reset();
  series.Append(1.0);
  series.Append(2.0);

  JsonValue doc;
  ASSERT_TRUE(ParseJson(obs::MetricsRegistry::Global().ToJson(), &doc));
  EXPECT_GE(doc.At("uptime_us").number, 0.0);
  EXPECT_EQ(doc.At("counters").At("obs_test.json.counter").number, 3.0);
  EXPECT_EQ(doc.At("gauges").At("obs_test.json.gauge").number, 2.5);
  const JsonValue& h = doc.At("histograms").At("obs_test.json.hist");
  EXPECT_EQ(h.At("count").number, 1.0);
  EXPECT_EQ(h.At("sum").number, 4.0);
  ASSERT_EQ(h.At("bounds").array.size(), 1u);
  ASSERT_EQ(h.At("buckets").array.size(), 2u);
  EXPECT_EQ(h.At("buckets").array[0].number, 1.0);
  EXPECT_EQ(h.At("buckets").array[1].number, 0.0);
  const JsonValue& s = doc.At("series").At("obs_test.json.series");
  ASSERT_EQ(s.array.size(), 2u);
  EXPECT_EQ(s.array[0].number, 1.0);
  EXPECT_EQ(s.array[1].number, 2.0);

  // The human table carries the same names.
  const std::string table = obs::MetricsRegistry::Global().ToTable();
  EXPECT_NE(table.find("obs_test.json.counter"), std::string::npos);
  EXPECT_NE(table.find("obs_test.json.hist"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Logging.

struct CapturedLog {
  obs::LogLevel level;
  std::string file;
  int line;
  std::string message;
};
std::vector<CapturedLog>& Captured() {
  static std::vector<CapturedLog> logs;
  return logs;
}
void CaptureSink(obs::LogLevel level, const char* file, int line,
                 const char* message) {
  Captured().push_back(CapturedLog{level, file, line, message});
}

// Restores the default sink and level even when a test fails mid-way.
class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Captured().clear();
    obs::SetLogSink(&CaptureSink);
  }
  void TearDown() override {
    obs::SetLogSink(nullptr);
    obs::SetLogLevel(obs::LogLevel::kInfo);
  }
};

TEST_F(LogTest, FiltersBySeverity) {
  obs::SetLogLevel(obs::LogLevel::kWarn);
  LEAD_LOG(DEBUG) << "hidden debug";
  LEAD_LOG(INFO) << "hidden info";
  LEAD_LOG(WARN) << "warned " << 7;
  LEAD_LOG(ERROR) << "boom";
  ASSERT_EQ(Captured().size(), 2u);
  EXPECT_EQ(Captured()[0].level, obs::LogLevel::kWarn);
  EXPECT_EQ(Captured()[0].message, "warned 7");
  EXPECT_NE(Captured()[0].file.find("obs_test"), std::string::npos);
  EXPECT_GT(Captured()[0].line, 0);
  EXPECT_EQ(Captured()[1].level, obs::LogLevel::kError);
  EXPECT_EQ(Captured()[1].message, "boom");
}

int Bump(int* calls) {
  ++*calls;
  return *calls;
}

TEST_F(LogTest, FilteredMessagesDoNotEvaluateArguments) {
  obs::SetLogLevel(obs::LogLevel::kInfo);
  int calls = 0;
  LEAD_LOG(DEBUG) << "value " << Bump(&calls);
  EXPECT_EQ(calls, 0);
  obs::SetLogLevel(obs::LogLevel::kDebug);
  LEAD_LOG(DEBUG) << "value " << Bump(&calls);
  EXPECT_EQ(calls, 1);
  ASSERT_EQ(Captured().size(), 1u);
  EXPECT_EQ(Captured()[0].message, "value 1");
}

TEST_F(LogTest, ParseLogLevelAcceptsNamesAndRejectsGarbage) {
  obs::LogLevel level = obs::LogLevel::kError;
  EXPECT_TRUE(obs::ParseLogLevel("debug", &level));
  EXPECT_EQ(level, obs::LogLevel::kDebug);
  EXPECT_TRUE(obs::ParseLogLevel("WARN", &level));
  EXPECT_EQ(level, obs::LogLevel::kWarn);
  EXPECT_TRUE(obs::ParseLogLevel("warning", &level));
  EXPECT_EQ(level, obs::LogLevel::kWarn);
  EXPECT_TRUE(obs::ParseLogLevel("Info", &level));
  EXPECT_EQ(level, obs::LogLevel::kInfo);
  EXPECT_TRUE(obs::ParseLogLevel("error", &level));
  EXPECT_EQ(level, obs::LogLevel::kError);
  level = obs::LogLevel::kDebug;
  EXPECT_FALSE(obs::ParseLogLevel("verbose", &level));
  EXPECT_FALSE(obs::ParseLogLevel("", &level));
  EXPECT_EQ(level, obs::LogLevel::kDebug) << "failed parse must not write";
  EXPECT_STREQ(obs::LogLevelName(obs::LogLevel::kWarn), "WARN");
}

// ---------------------------------------------------------------------------
// Collection session.

TEST(ScopedCollectionTest, WritesTraceAndMetricsFiles) {
  const std::string dir = ::testing::TempDir() + "/obs_collection";
  std::filesystem::create_directories(dir);
  const std::string trace_path = dir + "/trace.json";
  const std::string metrics_path = dir + "/metrics.json";
  {
    obs::ScopedCollection collection(trace_path, metrics_path);
    EXPECT_TRUE(obs::Tracer::Global().enabled());
    LEAD_TRACE_SCOPE(obs::kCatIo, "collected_span");
    obs::GetCounter("obs_test.collected").Increment();
  }
  EXPECT_FALSE(obs::Tracer::Global().enabled());

  JsonValue trace_doc;
  const std::string trace_json = ReadFile(trace_path);
  ASSERT_TRUE(ParseJson(trace_json, &trace_doc));
  bool found = false;
  for (const JsonValue& event : trace_doc.At("traceEvents").array) {
    if (event.At("name").string == "collected_span") found = true;
  }
  EXPECT_TRUE(found);

  JsonValue metrics_doc;
  ASSERT_TRUE(ParseJson(ReadFile(metrics_path), &metrics_doc));
  EXPECT_GE(metrics_doc.At("counters").At("obs_test.collected").number, 1.0);
  std::filesystem::remove_all(dir);
}

TEST(ScopedCollectionTest, EmptyPathsAreInert) {
  ASSERT_FALSE(obs::Tracer::Global().enabled());
  {
    obs::ScopedCollection collection("", "");
    EXPECT_FALSE(obs::Tracer::Global().enabled());
  }
  EXPECT_FALSE(obs::Tracer::Global().enabled());
}

}  // namespace
}  // namespace lead
