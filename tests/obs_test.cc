// Observability layer tests: the emitted Chrome trace JSON must be
// well-formed and round-trip span args, concurrent span emission from
// eight threads must lose and tear nothing, striped metrics must merge
// exactly, and the logger must filter by level without evaluating the
// stream arguments of suppressed messages.
//
// This file carries its own minimal recursive-descent JSON parser
// (independent of the GeoJSON reader in src/io) — strict enough to
// reject malformed output, small enough to audit.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/dump.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/recorder.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace lead {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON value + parser.

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool bool_value = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool Has(const std::string& key) const {
    return type == Type::kObject && object.count(key) > 0;
  }
  const JsonValue& At(const std::string& key) const {
    static const JsonValue kNullValue;
    auto it = object.find(key);
    return it == object.end() ? kNullValue : it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    SkipSpace();
    if (!ParseValue(out)) return false;
    SkipSpace();
    return pos_ == text_.size();  // no trailing garbage
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool Literal(const char* word, size_t len) {
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  bool ParseValue(JsonValue* out) {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return ParseObject(out);
      case '[': return ParseArray(out);
      case '"':
        out->type = JsonValue::Type::kString;
        return ParseString(&out->string);
      case 't':
        out->type = JsonValue::Type::kBool;
        out->bool_value = true;
        return Literal("true", 4);
      case 'f':
        out->type = JsonValue::Type::kBool;
        out->bool_value = false;
        return Literal("false", 5);
      case 'n':
        out->type = JsonValue::Type::kNull;
        return Literal("null", 4);
      default: return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out) {
    out->type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      SkipSpace();
      if (!ParseValue(&out->object[key])) return false;
      SkipSpace();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool ParseArray(JsonValue* out) {
    out->type = JsonValue::Type::kArray;
    ++pos_;  // '['
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      out->array.emplace_back();
      if (!ParseValue(&out->array.back())) return false;
      SkipSpace();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u':
          if (pos_ + 4 > text_.size()) return false;
          pos_ += 4;          // tests only need structure, not the code
          out->push_back('?');  // point itself
          break;
        default: return false;
      }
    }
    return false;  // unterminated
  }

  bool ParseNumber(JsonValue* out) {
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    out->type = JsonValue::Type::kNumber;
    out->number = std::strtod(start, &end);
    if (end == start) return false;
    pos_ += static_cast<size_t>(end - start);
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

bool ParseJson(const std::string& text, JsonValue* out) {
  return JsonParser(text).Parse(out);
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

// Parses the tracer's current JSON and returns the traceEvents array.
std::vector<JsonValue> TraceEvents() {
  const std::string json = obs::Tracer::Global().ToJson();
  JsonValue doc;
  EXPECT_TRUE(ParseJson(json, &doc)) << json.substr(0, 400);
  EXPECT_EQ(doc.At("displayTimeUnit").string, "ms");
  EXPECT_TRUE(doc.Has("otherData"));
  return doc.At("traceEvents").array;
}

// ---------------------------------------------------------------------------
// Tracer.

TEST(TraceTest, DisabledScopeRecordsNothing) {
  obs::Tracer& tracer = obs::Tracer::Global();
  ASSERT_FALSE(tracer.enabled());
  const uint64_t before = tracer.EventCount();
  for (int i = 0; i < 100; ++i) {
    LEAD_TRACE_SCOPE(obs::kCatPool, "disabled_span");
  }
  EXPECT_EQ(tracer.EventCount(), before);
}

TEST(TraceTest, JsonIsValidAndRoundTripsArgs) {
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Start();
  {
    obs::ScopedSpan span(obs::kCatIo, "unit_span");
    span.Arg("answer", 42.0);
    span.Arg("half", 0.5);
  }
  tracer.Stop();
  EXPECT_EQ(tracer.EventCount(), 1u);
  EXPECT_EQ(tracer.DroppedCount(), 0u);

  const std::vector<JsonValue> events = TraceEvents();
  bool found_process_name = false;
  const JsonValue* span_event = nullptr;
  for (const JsonValue& event : events) {
    if (event.At("ph").string == "M" &&
        event.At("name").string == "process_name") {
      found_process_name = true;
      EXPECT_EQ(event.At("args").At("name").string, "lead");
    }
    if (event.At("name").string == "unit_span") span_event = &event;
  }
  EXPECT_TRUE(found_process_name);
  ASSERT_NE(span_event, nullptr);
  EXPECT_EQ(span_event->At("ph").string, "X");
  EXPECT_EQ(span_event->At("cat").string, obs::kCatIo);
  EXPECT_EQ(span_event->At("pid").number, 1.0);
  EXPECT_TRUE(span_event->Has("tid"));
  EXPECT_TRUE(span_event->Has("ts"));
  EXPECT_TRUE(span_event->Has("dur"));
  EXPECT_GE(span_event->At("dur").number, 0.0);
  EXPECT_EQ(span_event->At("args").At("answer").number, 42.0);
  EXPECT_EQ(span_event->At("args").At("half").number, 0.5);
}

TEST(TraceTest, EightThreadsLoseAndTearNothing) {
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 512;
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Start();
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      obs::Tracer::Global().SetCurrentThreadName("obs-test-" +
                                                 std::to_string(t));
      for (int j = 0; j < kSpansPerThread; ++j) {
        obs::ScopedSpan span(obs::kCatPool, "worker_span");
        span.Arg("t", t);
        span.Arg("j", j);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  tracer.Stop();
  EXPECT_EQ(tracer.EventCount(),
            static_cast<uint64_t>(kThreads) * kSpansPerThread);
  EXPECT_EQ(tracer.DroppedCount(), 0u);

  // Every span must come back complete: right name/cat, both args, and a
  // (t, j) pair seen exactly once — a torn or overwritten slot would
  // duplicate or corrupt one.
  const std::vector<JsonValue> events = TraceEvents();
  std::map<int, std::set<int>> seen;       // t -> {j}
  std::map<int, std::set<double>> lanes;   // t -> {tid}
  std::set<std::string> thread_names;
  for (const JsonValue& event : events) {
    if (event.At("ph").string == "M" &&
        event.At("name").string == "thread_name") {
      thread_names.insert(event.At("args").At("name").string);
    }
    if (event.At("name").string != "worker_span") continue;
    EXPECT_EQ(event.At("ph").string, "X");
    EXPECT_EQ(event.At("cat").string, obs::kCatPool);
    const int t = static_cast<int>(event.At("args").At("t").number);
    const int j = static_cast<int>(event.At("args").At("j").number);
    ASSERT_GE(t, 0);
    ASSERT_LT(t, kThreads);
    ASSERT_GE(j, 0);
    ASSERT_LT(j, kSpansPerThread);
    EXPECT_TRUE(seen[t].insert(j).second)
        << "duplicate span t=" << t << " j=" << j;
    lanes[t].insert(event.At("tid").number);
  }
  ASSERT_EQ(seen.size(), static_cast<size_t>(kThreads));
  std::set<double> distinct_tids;
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(seen[t].size(), static_cast<size_t>(kSpansPerThread))
        << "lost spans from thread " << t;
    // True per-thread attribution: one lane per emitting thread.
    ASSERT_EQ(lanes[t].size(), 1u);
    distinct_tids.insert(*lanes[t].begin());
    EXPECT_EQ(thread_names.count("obs-test-" + std::to_string(t)), 1u);
  }
  EXPECT_EQ(distinct_tids.size(), static_cast<size_t>(kThreads));
}

TEST(TraceTest, SpanStraddlingStopIsDropped) {
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Start();
  {
    obs::ScopedSpan span(obs::kCatIo, "straddler");
    tracer.Stop();
  }  // finishes with tracing off; must not touch published slots
  EXPECT_EQ(tracer.EventCount(), 0u);
}

// ---------------------------------------------------------------------------
// Metrics.

TEST(MetricsTest, CounterMergesConcurrentIncrements) {
  constexpr int kThreads = 8;
  constexpr int kIncrements = 4096;
  obs::Counter& counter = obs::GetCounter("obs_test.counter");
  counter.Reset();
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIncrements; ++i) counter.Increment();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(), int64_t{kThreads} * kIncrements);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0);
}

TEST(MetricsTest, HistogramMergesStripesAndBuckets) {
  constexpr int kThreads = 4;
  constexpr int kRounds = 100;
  obs::Histogram& hist =
      obs::GetHistogram("obs_test.hist", {1.0, 10.0, 100.0});
  hist.Reset();
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist] {
      for (int i = 0; i < kRounds; ++i) {
        hist.Observe(0.5);
        hist.Observe(5.0);
        hist.Observe(50.0);
        hist.Observe(500.0);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const obs::Histogram::Snapshot snap = hist.Snap();
  const int64_t per_bucket = int64_t{kThreads} * kRounds;
  EXPECT_EQ(snap.count, 4 * per_bucket);
  ASSERT_EQ(snap.bounds.size(), 3u);
  ASSERT_EQ(snap.bucket_counts.size(), 4u);
  for (int b = 0; b < 4; ++b) {
    EXPECT_EQ(snap.bucket_counts[b], per_bucket) << "bucket " << b;
  }
  // All observed values are exactly representable, so the merged sum and
  // extrema are exact regardless of interleaving.
  EXPECT_EQ(snap.min, 0.5);
  EXPECT_EQ(snap.max, 500.0);
  EXPECT_EQ(snap.sum, 555.5 * static_cast<double>(per_bucket));
}

TEST(MetricsTest, GaugeAndSeriesBasics) {
  obs::Gauge& gauge = obs::GetGauge("obs_test.gauge");
  gauge.Set(2.5);
  gauge.Add(1.5);
  EXPECT_EQ(gauge.Value(), 4.0);
  gauge.Reset();
  EXPECT_EQ(gauge.Value(), 0.0);

  obs::Series series(/*capacity=*/4);
  for (int i = 0; i < 6; ++i) series.Append(i);
  const std::vector<double> values = series.Values();
  ASSERT_EQ(values.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(values[i], i);
  EXPECT_EQ(series.dropped(), 2u);
  series.Reset();
  EXPECT_TRUE(series.Values().empty());
  EXPECT_EQ(series.dropped(), 0u);
}

TEST(MetricsTest, JsonEscapesHostileMetricNames) {
  // A metric name carrying quote, backslash, newline, and a raw control
  // byte must not corrupt the registry export: the JSON still parses and
  // the unescaped name round-trips as the key.
  const std::string hostile = "obs_test.esc\"quote\\back\nline\x01";
  obs::Counter& counter = obs::GetCounter(hostile);
  counter.Reset();
  counter.Add(7);
  JsonValue doc;
  const std::string json = obs::MetricsRegistry::Global().ToJson();
  ASSERT_TRUE(ParseJson(json, &doc)) << json.substr(0, 400);
  // Our parser folds \uXXXX escapes to '?', so look the key up with the
  // control byte folded the same way.
  std::string folded = hostile;
  folded.back() = '?';
  ASSERT_TRUE(doc.At("counters").Has(folded)) << json.substr(0, 400);
  EXPECT_EQ(doc.At("counters").At(folded).number, 7.0);
  counter.Reset();
}

TEST(MetricsTest, JsonExportParsesAndCarriesValues) {
  obs::GetCounter("obs_test.json.counter").Reset();
  obs::GetCounter("obs_test.json.counter").Add(3);
  obs::GetGauge("obs_test.json.gauge").Set(2.5);
  obs::Histogram& hist = obs::GetHistogram("obs_test.json.hist", {10.0});
  hist.Reset();
  hist.Observe(4.0);
  obs::Series& series = obs::GetSeries("obs_test.json.series");
  series.Reset();
  series.Append(1.0);
  series.Append(2.0);

  JsonValue doc;
  ASSERT_TRUE(ParseJson(obs::MetricsRegistry::Global().ToJson(), &doc));
  EXPECT_GE(doc.At("uptime_us").number, 0.0);
  EXPECT_EQ(doc.At("counters").At("obs_test.json.counter").number, 3.0);
  EXPECT_EQ(doc.At("gauges").At("obs_test.json.gauge").number, 2.5);
  const JsonValue& h = doc.At("histograms").At("obs_test.json.hist");
  EXPECT_EQ(h.At("count").number, 1.0);
  EXPECT_EQ(h.At("sum").number, 4.0);
  ASSERT_EQ(h.At("bounds").array.size(), 1u);
  ASSERT_EQ(h.At("buckets").array.size(), 2u);
  EXPECT_EQ(h.At("buckets").array[0].number, 1.0);
  EXPECT_EQ(h.At("buckets").array[1].number, 0.0);
  const JsonValue& s = doc.At("series").At("obs_test.json.series");
  ASSERT_EQ(s.array.size(), 2u);
  EXPECT_EQ(s.array[0].number, 1.0);
  EXPECT_EQ(s.array[1].number, 2.0);

  // The human table carries the same names.
  const std::string table = obs::MetricsRegistry::Global().ToTable();
  EXPECT_NE(table.find("obs_test.json.counter"), std::string::npos);
  EXPECT_NE(table.find("obs_test.json.hist"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Logging.

struct CapturedLog {
  obs::LogLevel level;
  std::string file;
  int line;
  std::string message;
};
std::vector<CapturedLog>& Captured() {
  static std::vector<CapturedLog> logs;
  return logs;
}
void CaptureSink(obs::LogLevel level, const char* file, int line,
                 const char* message) {
  Captured().push_back(CapturedLog{level, file, line, message});
}

// Restores the default sink and level even when a test fails mid-way.
class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Captured().clear();
    obs::SetLogSink(&CaptureSink);
  }
  void TearDown() override {
    obs::SetLogSink(nullptr);
    obs::SetLogLevel(obs::LogLevel::kInfo);
  }
};

TEST_F(LogTest, FiltersBySeverity) {
  obs::SetLogLevel(obs::LogLevel::kWarn);
  LEAD_LOG(DEBUG) << "hidden debug";
  LEAD_LOG(INFO) << "hidden info";
  LEAD_LOG(WARN) << "warned " << 7;
  LEAD_LOG(ERROR) << "boom";
  ASSERT_EQ(Captured().size(), 2u);
  EXPECT_EQ(Captured()[0].level, obs::LogLevel::kWarn);
  EXPECT_EQ(Captured()[0].message, "warned 7");
  EXPECT_NE(Captured()[0].file.find("obs_test"), std::string::npos);
  EXPECT_GT(Captured()[0].line, 0);
  EXPECT_EQ(Captured()[1].level, obs::LogLevel::kError);
  EXPECT_EQ(Captured()[1].message, "boom");
}

int Bump(int* calls) {
  ++*calls;
  return *calls;
}

TEST_F(LogTest, FilteredMessagesDoNotEvaluateArguments) {
  obs::SetLogLevel(obs::LogLevel::kInfo);
  int calls = 0;
  LEAD_LOG(DEBUG) << "value " << Bump(&calls);
  EXPECT_EQ(calls, 0);
  obs::SetLogLevel(obs::LogLevel::kDebug);
  LEAD_LOG(DEBUG) << "value " << Bump(&calls);
  EXPECT_EQ(calls, 1);
  ASSERT_EQ(Captured().size(), 1u);
  EXPECT_EQ(Captured()[0].message, "value 1");
}

TEST_F(LogTest, ParseLogLevelAcceptsNamesAndRejectsGarbage) {
  obs::LogLevel level = obs::LogLevel::kError;
  EXPECT_TRUE(obs::ParseLogLevel("debug", &level));
  EXPECT_EQ(level, obs::LogLevel::kDebug);
  EXPECT_TRUE(obs::ParseLogLevel("WARN", &level));
  EXPECT_EQ(level, obs::LogLevel::kWarn);
  EXPECT_TRUE(obs::ParseLogLevel("warning", &level));
  EXPECT_EQ(level, obs::LogLevel::kWarn);
  EXPECT_TRUE(obs::ParseLogLevel("Info", &level));
  EXPECT_EQ(level, obs::LogLevel::kInfo);
  EXPECT_TRUE(obs::ParseLogLevel("error", &level));
  EXPECT_EQ(level, obs::LogLevel::kError);
  level = obs::LogLevel::kDebug;
  EXPECT_FALSE(obs::ParseLogLevel("verbose", &level));
  EXPECT_FALSE(obs::ParseLogLevel("", &level));
  EXPECT_EQ(level, obs::LogLevel::kDebug) << "failed parse must not write";
  EXPECT_STREQ(obs::LogLevelName(obs::LogLevel::kWarn), "WARN");
}

// ---------------------------------------------------------------------------
// Collection session.

TEST(ScopedCollectionTest, WritesTraceAndMetricsFiles) {
  const std::string dir = ::testing::TempDir() + "/obs_collection";
  std::filesystem::create_directories(dir);
  const std::string trace_path = dir + "/trace.json";
  const std::string metrics_path = dir + "/metrics.json";
  {
    obs::ScopedCollection collection(trace_path, metrics_path);
    EXPECT_TRUE(obs::Tracer::Global().enabled());
    LEAD_TRACE_SCOPE(obs::kCatIo, "collected_span");
    obs::GetCounter("obs_test.collected").Increment();
  }
  EXPECT_FALSE(obs::Tracer::Global().enabled());

  JsonValue trace_doc;
  const std::string trace_json = ReadFile(trace_path);
  ASSERT_TRUE(ParseJson(trace_json, &trace_doc));
  bool found = false;
  for (const JsonValue& event : trace_doc.At("traceEvents").array) {
    if (event.At("name").string == "collected_span") found = true;
  }
  EXPECT_TRUE(found);

  JsonValue metrics_doc;
  ASSERT_TRUE(ParseJson(ReadFile(metrics_path), &metrics_doc));
  EXPECT_GE(metrics_doc.At("counters").At("obs_test.collected").number, 1.0);
  std::filesystem::remove_all(dir);
}

TEST(ScopedCollectionTest, EmptyPathsAreInert) {
  ASSERT_FALSE(obs::Tracer::Global().enabled());
  {
    obs::ScopedCollection collection("", "");
    EXPECT_FALSE(obs::Tracer::Global().enabled());
  }
  EXPECT_FALSE(obs::Tracer::Global().enabled());
}

// ---------------------------------------------------------------------------
// Monotonic time.

TEST(TimeTest, MonotonicDeltaClampsBackwardMotion) {
  EXPECT_EQ(obs::internal::MonotonicDelta(100, 150), 50u);
  EXPECT_EQ(obs::internal::MonotonicDelta(100, 100), 0u);
  // A clock stepping backwards must clamp to zero, not wrap to ~2^64.
  EXPECT_EQ(obs::internal::MonotonicDelta(150, 100), 0u);
}

TEST(TimeTest, NowMicrosNeverGoesBackwards) {
  // Also exercises NowMicros' own debug monotonicity assert on a tight
  // call loop.
  uint64_t last = obs::NowMicros();
  for (int i = 0; i < 20000; ++i) {
    const uint64_t now = obs::NowMicros();
    ASSERT_GE(now, last);
    last = now;
  }
}

// ---------------------------------------------------------------------------
// Flight recorder.

// Restores the recorder's enabled state even when a test fails mid-way.
class RecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = obs::Recorder::Global().enabled();
    obs::Recorder::Global().SetEnabled(true);
  }
  void TearDown() override {
    obs::Recorder::Global().SetEnabled(was_enabled_);
  }
  bool was_enabled_ = false;
};

TEST_F(RecorderTest, CapturesSpansLogsAndEvents) {
  {
    obs::ScopedSpan span(obs::kCatDet, "recorder_probe_span");
  }
  LEAD_LOG(WARN) << "recorder probe log " << 42;
  obs::RecordEvent("recorder_probe", "event", 2.5, "probe-detail");

  const std::vector<obs::RecorderRecord> records =
      obs::Recorder::Global().Snapshot();
  const obs::RecorderRecord* span = nullptr;
  const obs::RecorderRecord* log = nullptr;
  const obs::RecorderRecord* event = nullptr;
  for (const obs::RecorderRecord& r : records) {
    if (r.kind == obs::RecordKind::kSpan && r.name != nullptr &&
        std::string(r.name) == "recorder_probe_span") {
      span = &r;
    }
    if (r.kind == obs::RecordKind::kLog &&
        r.text.find("recorder probe log 42") != std::string::npos) {
      log = &r;
    }
    if (r.kind == obs::RecordKind::kEvent && r.category != nullptr &&
        std::string(r.category) == "recorder_probe") {
      event = &r;
    }
  }
  ASSERT_NE(span, nullptr);
  EXPECT_STREQ(span->category, obs::kCatDet);
  EXPECT_GT(span->ts_us, 0u);
  ASSERT_NE(log, nullptr);
  EXPECT_NE(std::string(log->category).find("obs_test"), std::string::npos);
  EXPECT_GT(log->line, 0);
  ASSERT_NE(event, nullptr);
  EXPECT_EQ(event->value, 2.5);
  EXPECT_EQ(event->text, "probe-detail");
  EXPECT_GT(obs::Recorder::Global().TotalAppended(), 0u);
}

TEST_F(RecorderTest, WrapAroundKeepsNewestRecords) {
  // Overfill this thread's ring by ~50%: the snapshot must hold exactly
  // the newest records, contiguous to the end. A full ring surfaces
  // capacity - 1 of them — the slot the *next* append would overwrite is
  // always discarded, because a snapshot cannot tell an idle writer from
  // one caught mid-overwrite before publishing the head.
  const int total = static_cast<int>(obs::kRecorderRingRecords) + 952;
  for (int i = 0; i < total; ++i) {
    obs::RecordEvent("wraptest", "tick", static_cast<double>(i), nullptr);
  }
  std::vector<int> values;
  for (const obs::RecorderRecord& r : obs::Recorder::Global().Snapshot()) {
    if (r.kind == obs::RecordKind::kEvent && r.category != nullptr &&
        std::string(r.category) == "wraptest") {
      values.push_back(static_cast<int>(r.value));
    }
  }
  ASSERT_EQ(values.size(), obs::kRecorderRingRecords - 1);
  std::sort(values.begin(), values.end());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(values[i], 953 + static_cast<int>(i));
  }
  EXPECT_EQ(values.back(), total - 1);
}

TEST_F(RecorderTest, ConcurrentSnapshotSeesNoTornRecords) {
  // A writer laps its ring while the main thread snapshots continuously:
  // every surfaced record must be internally consistent (text matches
  // value) — the discard window around the head hides in-flight
  // overwrites. Run under TSan, this is also the recorder's data-race
  // proof.
  std::atomic<bool> done{false};
  const int laps = static_cast<int>(obs::kRecorderRingRecords) * 4;
  std::thread writer([&done, laps] {
    for (int i = 0; i < laps; ++i) {
      std::string detail = "payload-" + std::to_string(i);
      obs::RecordEvent("torntest", "tick", static_cast<double>(i),
                       detail.c_str());
    }
    done.store(true, std::memory_order_release);
  });
  auto verify = [](int* inspected) {
    for (const obs::RecorderRecord& r : obs::Recorder::Global().Snapshot()) {
      if (r.kind != obs::RecordKind::kEvent || r.category == nullptr ||
          std::string(r.category) != "torntest") {
        continue;
      }
      ++*inspected;
      const std::string expected =
          "payload-" + std::to_string(static_cast<int>(r.value));
      ASSERT_EQ(r.text, expected) << "torn record surfaced by snapshot";
    }
  };
  // While the writer laps, a snapshot may surface few records (or none:
  // the discard window covers everything a lapping writer might be
  // rewriting) — but whatever it does surface must be consistent.
  int racing = 0;
  while (!done.load(std::memory_order_acquire)) {
    verify(&racing);
    if (::testing::Test::HasFatalFailure()) break;
  }
  writer.join();
  // Quiescent again, the final snapshot must surface the newest history.
  int settled = 0;
  verify(&settled);
  EXPECT_GE(settled,
            static_cast<int>(obs::kRecorderRingRecords) - 1);
  SUCCEED() << racing << " records inspected mid-race";
}

// ---------------------------------------------------------------------------
// Post-mortem dumps.

// Points dumps at a fresh temp dir; restores dir, interval, and recorder
// state afterwards so later tests see the environment-configured setup.
class DumpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prior_dir_ = obs::DumpDir();
    was_enabled_ = obs::Recorder::Global().enabled();
    obs::Recorder::Global().SetEnabled(true);
    dir_ = ::testing::TempDir() + "/obs_dumps_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    obs::SetDumpDir(dir_);
  }
  void TearDown() override {
    obs::SetDumpDir(prior_dir_);
    obs::SetAnomalyDumpIntervalMicros(5'000'000);
    obs::Recorder::Global().SetEnabled(was_enabled_);
    std::filesystem::remove_all(dir_);
  }

  size_t CountDumps() const {
    size_t count = 0;
    for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("leaddump-", 0) == 0) ++count;
    }
    return count;
  }

  std::string dir_;
  std::string prior_dir_;
  bool was_enabled_ = false;
};

TEST_F(DumpTest, RequestDumpWritesSelfContainedPerfettoLoadableJson) {
  {
    obs::ScopedSpan span(obs::kCatDet, "dump_probe_span");
  }
  obs::RecordEvent("dumptest", "marker", 1.0, "dump-probe");

  std::string path;
  std::string error;
  ASSERT_TRUE(obs::RequestDump("manual", "unit-test", &path, &error))
      << error;
  EXPECT_NE(path.find("leaddump-"), std::string::npos);

  JsonValue doc;
  const std::string json = ReadFile(path);
  ASSERT_TRUE(ParseJson(json, &doc)) << json.substr(0, 400);
  // Machine-readable header.
  const JsonValue& header = doc.At("leaddump");
  EXPECT_EQ(header.At("schema_version").number,
            static_cast<double>(obs::kDumpSchemaVersion));
  EXPECT_EQ(header.At("trigger").At("cause").string, "manual");
  EXPECT_EQ(header.At("trigger").At("detail").string, "unit-test");
  EXPECT_TRUE(header.Has("build"));
  EXPECT_TRUE(header.Has("recorder"));
  // Full metrics snapshot rides along.
  EXPECT_TRUE(doc.At("metrics").Has("counters"));
  // Perfetto-loadable body: traceEvents with our span and instant.
  EXPECT_EQ(doc.At("displayTimeUnit").string, "ms");
  bool found_span = false;
  bool found_event = false;
  for (const JsonValue& event : doc.At("traceEvents").array) {
    if (event.At("name").string == "dump_probe_span" &&
        event.At("ph").string == "X") {
      found_span = true;
    }
    if (event.At("name").string == "marker" &&
        event.At("cat").string == "dumptest") {
      found_event = true;
      EXPECT_EQ(event.At("ph").string, "i");
      EXPECT_EQ(event.At("args").At("detail").string, "dump-probe");
    }
  }
  EXPECT_TRUE(found_span);
  EXPECT_TRUE(found_event);

  // The CLI-facing report renders it and names the trigger cause.
  std::string report;
  ASSERT_TRUE(obs::FormatDumpReport(json, &report, &error)) << error;
  EXPECT_NE(report.find("cause: manual"), std::string::npos) << report;
  EXPECT_NE(report.find("dump_probe_span"), std::string::npos) << report;
}

TEST_F(DumpTest, AnomalyTriggersAreRateLimitedAndGatedOnDir) {
  obs::SetAnomalyDumpIntervalMicros(0);  // every trigger fires
  obs::TriggerAnomalyDump("deadline", "stage-one");
  obs::TriggerAnomalyDump("watchdog", "stage-two");
  EXPECT_EQ(CountDumps(), 2u);
  // A long interval swallows the next trigger...
  obs::SetAnomalyDumpIntervalMicros(3'600'000'000ull);
  obs::TriggerAnomalyDump("deadline", "suppressed");
  EXPECT_EQ(CountDumps(), 2u);
  // ...and with no dump dir the trigger is a hard no-op.
  obs::SetAnomalyDumpIntervalMicros(0);
  obs::SetDumpDir("");
  EXPECT_FALSE(obs::DumpsEnabled());
  obs::TriggerAnomalyDump("deadline", "disabled");
  EXPECT_EQ(CountDumps(), 2u);
}

// ---------------------------------------------------------------------------
// Sampling profiler.

#if defined(__unix__) || defined(__APPLE__)
TEST(ProfilerTest, CollapsedProfileAttributesSamplesToActiveSpans) {
  const std::string out_path = ::testing::TempDir() + "/obs_test.collapsed";
  std::filesystem::remove(out_path);

  obs::ProfilerOptions options;
  options.hz = 250;
  options.cpu_time = true;
  std::string error;
  ASSERT_TRUE(obs::StartProfiler(options, &error)) << error;
  EXPECT_TRUE(obs::ProfilerRunning());
  EXPECT_FALSE(obs::StartProfiler(options, &error));  // already running

  {
    // Burn CPU inside a span so SIGPROF lands with the span stack live.
    obs::ScopedSpan span(obs::kCatDet, "profile_burn");
    volatile double sink = 0.0;
    const uint64_t start = obs::NowMicros();
    while (obs::NowMicros() - start < 400000) {
      for (int i = 0; i < 1000; ++i) sink = sink + static_cast<double>(i);
    }
  }

  ASSERT_TRUE(obs::StopProfiler(out_path, &error)) << error;
  EXPECT_FALSE(obs::ProfilerRunning());

  // Collapsed-stack format: "lead;cat.name count" per line.
  std::ifstream in(out_path);
  ASSERT_TRUE(in.good());
  uint64_t total = 0;
  uint64_t burn = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    ASSERT_EQ(line.rfind("lead", 0), 0u) << line;
    const uint64_t count = std::strtoull(line.c_str() + space + 1,
                                         nullptr, 10);
    total += count;
    if (line.find("det.profile_burn") != std::string::npos) burn += count;
  }
  if (total < 10) {
    GTEST_SKIP() << "timer delivered only " << total
                 << " samples; host timer too coarse to judge attribution";
  }
  // The burn loop owns the process' CPU time, so the span should own the
  // overwhelming share of samples.
  EXPECT_GE(burn * 10, total * 8)
      << "only " << burn << "/" << total << " samples inside profile_burn";
  std::filesystem::remove(out_path);
}
#endif  // defined(__unix__) || defined(__APPLE__)

// ---------------------------------------------------------------------------
// Dump report parsing.

TEST(ReportTest, RejectsNonDumpInput) {
  std::string report;
  std::string error;
  EXPECT_FALSE(obs::FormatDumpReport("{}", &report, &error));
  EXPECT_FALSE(error.empty());
  error.clear();
  EXPECT_FALSE(obs::FormatDumpReport("not json at all", &report, &error));
  EXPECT_FALSE(error.empty());
  error.clear();
  EXPECT_FALSE(
      obs::FormatDumpReport("{\"traceEvents\": []}", &report, &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace lead
