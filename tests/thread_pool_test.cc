// Unit tests for the work-stealing ParallelForDynamic loop
// (ExecStrategy::kFast): exactly-once execution under steals, inline
// degeneration for nested calls, empty/degenerate inputs, shutdown of a
// local pool, cancellation skipping, and a stress loop that doubles as
// the TSan target for the atomic claim/steal protocol (ci.sh TSan
// stage).
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/cancel.h"
#include "common/exec_strategy.h"
#include "common/thread_pool.h"

namespace lead {
namespace {

TEST(ExecStrategyTest, ParseAndName) {
  ExecStrategy s = ExecStrategy::kFast;
  EXPECT_TRUE(ParseExecStrategy("deterministic", &s));
  EXPECT_EQ(s, ExecStrategy::kDeterministic);
  EXPECT_TRUE(ParseExecStrategy("fast", &s));
  EXPECT_EQ(s, ExecStrategy::kFast);
  EXPECT_FALSE(ParseExecStrategy("warp", &s));
  EXPECT_EQ(s, ExecStrategy::kFast);  // untouched on failure
  EXPECT_STREQ(ExecStrategyName(ExecStrategy::kDeterministic),
               "deterministic");
  EXPECT_STREQ(ExecStrategyName(ExecStrategy::kFast), "fast");
}

TEST(ExecStrategyTest, DynamicChunkIsPositiveAndCoarse) {
  EXPECT_GE(DynamicChunk(0, 4), 1);
  EXPECT_GE(DynamicChunk(1, 8), 1);
  EXPECT_GE(DynamicChunk(1000, 0), 1);
  // Roughly a handful of chunks per lane: n=1024 over 4 lanes must give
  // chunks that are neither per-element (1) nor whole-segment (256).
  const int64_t chunk = DynamicChunk(1024, 4);
  EXPECT_GT(chunk, 1);
  EXPECT_LT(chunk, 256);
}

// Every index runs exactly once, across a sweep of sizes, lane counts,
// and chunk sizes (including chunk > n and lanes > n).
TEST(ParallelForDynamicTest, CoversAllIndicesExactlyOnce) {
  for (const int64_t n : {1, 2, 7, 64, 1000}) {
    for (const int lanes : {1, 2, 4, 8, 16}) {
      for (const int64_t chunk : {int64_t{1}, int64_t{3}, int64_t{4096},
                                  DynamicChunk(n, lanes)}) {
        std::vector<std::atomic<int>> counts(static_cast<size_t>(n));
        ThreadPool::Global().ParallelForDynamic(
            n, lanes, chunk,
            [&counts](int64_t begin, int64_t end, int /*lane*/) {
              for (int64_t i = begin; i < end; ++i) {
                counts[static_cast<size_t>(i)].fetch_add(1);
              }
            });
        for (int64_t i = 0; i < n; ++i) {
          ASSERT_EQ(counts[static_cast<size_t>(i)].load(), 1)
              << "index " << i << " (n=" << n << ", lanes=" << lanes
              << ", chunk=" << chunk << ")";
        }
      }
    }
  }
}

// Steal safety under imbalance: one segment's items are much slower, so
// idle lanes must steal from it — and stealing must never duplicate or
// drop an index.
TEST(ParallelForDynamicTest, ImbalancedLoadStillRunsExactlyOnce) {
  constexpr int64_t kN = 256;
  std::vector<std::atomic<int>> counts(kN);
  std::atomic<int64_t> sum{0};
  ThreadPool::Global().ParallelForDynamic(
      kN, 8, DynamicChunk(kN, 8),
      [&](int64_t begin, int64_t end, int /*lane*/) {
        for (int64_t i = begin; i < end; ++i) {
          if (i < kN / 8) {
            // Busy work concentrated in lane 0's segment.
            volatile int64_t spin = 0;
            for (int k = 0; k < 20000; ++k) spin = spin + k;
          }
          counts[static_cast<size_t>(i)].fetch_add(1);
          sum.fetch_add(i);
        }
      });
  for (int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(counts[static_cast<size_t>(i)].load(), 1) << "index " << i;
  }
  EXPECT_EQ(sum.load(), kN * (kN - 1) / 2);
}

TEST(ParallelForDynamicTest, ZeroAndNegativeSizesAreNoOps) {
  int calls = 0;
  ThreadPool::Global().ParallelForDynamic(
      0, 4, 8, [&calls](int64_t, int64_t, int) { ++calls; });
  ThreadPool::Global().ParallelForDynamic(
      -3, 4, 8, [&calls](int64_t, int64_t, int) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelForDynamicTest, SingleLaneRunsInlineAsOneBlock) {
  std::vector<std::pair<int64_t, int64_t>> blocks;
  ThreadPool::Global().ParallelForDynamic(
      100, 1, 8, [&blocks](int64_t begin, int64_t end, int lane) {
        EXPECT_EQ(lane, 0);
        blocks.emplace_back(begin, end);
      });
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0], (std::pair<int64_t, int64_t>{0, 100}));
}

// A dynamic loop nested inside another parallel region must run inline
// on the calling lane (single block, lane 0) instead of re-entering the
// queue — the deadlock-avoidance contract shared with ParallelFor.
TEST(ParallelForDynamicTest, NestedCallsRunInline) {
  std::atomic<int64_t> total{0};
  ThreadPool::Global().ParallelForBlocks(
      8, 4, [&total](int64_t begin, int64_t end, int /*lane*/) {
        for (int64_t i = begin; i < end; ++i) {
          ThreadPool::Global().ParallelForDynamic(
              16, 8, 2, [&total](int64_t b, int64_t e, int inner_lane) {
                EXPECT_EQ(inner_lane, 0);
                total.fetch_add(e - b);
              });
        }
      });
  EXPECT_EQ(total.load(), 8 * 16);
}

// A pre-cancelled ambient token skips every chunk: the loop returns (no
// hang) without executing fn.
TEST(ParallelForDynamicTest, PreCancelledTokenSkipsAllChunks) {
  CancelToken token = CancelToken::Cancellable();
  token.Cancel(CancelCause::kUser);
  ScopedCancel scoped(token);
  std::atomic<int> calls{0};
  ThreadPool::Global().ParallelForDynamic(
      64, 4, 4, [&calls](int64_t, int64_t, int) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

// A local pool constructs and joins cleanly with no work (empty-queue
// shutdown) and after running dynamic work.
TEST(ParallelForDynamicTest, LocalPoolShutsDownCleanly) {
  { ThreadPool idle(3); }  // no work at all
  ThreadPool pool(3);
  std::atomic<int64_t> sum{0};
  pool.ParallelForDynamic(100, 4, 8,
                          [&sum](int64_t begin, int64_t end, int /*lane*/) {
                            for (int64_t i = begin; i < end; ++i) {
                              sum.fetch_add(i);
                            }
                          });
  EXPECT_EQ(sum.load(), 100 * 99 / 2);
}

// TSan stress target: many iterations with varying shapes so claim/steal
// interleavings get real coverage. The atomic sum catches lost or
// duplicated chunks; TSan catches protocol races.
TEST(ParallelForDynamicTest, StressDynamicLoop) {
  for (int iter = 0; iter < 200; ++iter) {
    const int64_t n = 1 + (iter * 37) % 300;
    const int lanes = 1 + iter % 8;
    const int64_t chunk = 1 + iter % 9;
    std::atomic<int64_t> sum{0};
    ThreadPool::Global().ParallelForDynamic(
        n, lanes, chunk, [&sum](int64_t begin, int64_t end, int /*lane*/) {
          for (int64_t i = begin; i < end; ++i) sum.fetch_add(i);
        });
    ASSERT_EQ(sum.load(), n * (n - 1) / 2)
        << "iter " << iter << " n=" << n << " lanes=" << lanes
        << " chunk=" << chunk;
  }
}

}  // namespace
}  // namespace lead
