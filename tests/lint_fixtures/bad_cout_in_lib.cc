// Fixture: std::cout in library code must be flagged when linted with
// --lib (rule: cout-in-lib).
#include <iostream>

void Report(int n) { std::cout << n << "\n"; }
