// Fixture: direct <random> engine construction outside common/rng.h must
// be flagged (rule: raw-rng).
#include <random>

int Draw() {
  std::mt19937 engine(42);
  return static_cast<int>(engine());
}
