// Fixture: range-for over an unordered container must be flagged
// (rule: unordered-iter).
#include <string>
#include <unordered_map>

int Total(const std::unordered_map<std::string, int>& counts) {
  int total = 0;
  for (const auto& [key, value] : counts) {
    total += value;
  }
  return total;
}
