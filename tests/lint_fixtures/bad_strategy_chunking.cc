// Fixture for the strategy-chunking rule: the third argument of a
// ParallelForDynamic call (the work-stealing grain) must come from
// DynamicChunk(n, lanes), not a per-call-site constant.
namespace lead {

void Bad(ThreadPool& pool, long n, int lanes) {
  pool.ParallelForDynamic(n, lanes, 64, [](long, long, int) {});
}

void Good(ThreadPool& pool, long n, int lanes) {
  pool.ParallelForDynamic(n, lanes, DynamicChunk(n, lanes),
                          [](long, long, int) {});
}

void GoodVariable(ThreadPool& pool, long n, int lanes, long grain) {
  pool.ParallelForDynamic(n, lanes, grain, [](long, long, int) {});
}

void AllowedLiteral(ThreadPool& pool, long n, int lanes) {
  // A provably-per-element loop can pin grain 1 with a reason.
  pool.ParallelForDynamic(
      n, lanes, 1,  // lead-lint: allow(strategy-chunking)
      [](long, long, int) {});
}

}  // namespace lead
