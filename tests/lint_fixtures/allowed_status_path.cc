// status-path allow markers: best-effort paths annotated deliberately.
#include "common/status.h"

namespace lead {

Status Step();
void Note();

Status BestEffort() {
  Status st = Step();  // lead-lint: allow(status-path)
  return Status::Ok();
}

Status ToleratedFailure() {
  Status st = Step();
  if (!st.ok()) {  // lead-lint: allow(status-path)
    Note();
  }
  return Status::Ok();
}

}  // namespace lead
