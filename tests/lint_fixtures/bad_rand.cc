// Fixture: libc rand() must be flagged (rule: rand).
#include <cstdlib>

int Roll() { return rand() % 6; }
