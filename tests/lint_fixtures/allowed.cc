// Fixture: every violation here carries an allow-marker, so the file
// must lint clean.
#include <cstdlib>

int Roll() { return rand() % 6; }  // lead-lint: allow(rand)

bool IsUnit(float x) {
  return x == 1.0f;  // lead-lint: allow(float-eq)
}

int* Make() { return new int(7); }  // lead-lint: allow(raw-new)
