// lock-scope: naked lock calls outside RAII in library code.
#include <mutex>

namespace lead {

struct Worker {
  void Unsafe() {
    mu_.lock();
    ++count_;
    mu_.unlock();
  }
  std::mutex mu_;
  int count_ = 0;
};

}  // namespace lead
