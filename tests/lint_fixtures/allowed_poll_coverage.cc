// poll-coverage allow markers: loops bounded by already-loaded data.
#include "common/stage_queue.h"

namespace lead {

int Drain(BoundedQueue<int>& queue) {
  int total = 0;
  int item = 0;
  while (queue.Pop(&item)) {  // lead-lint: allow(poll-coverage)
    total += item;
  }
  return total;
}

}  // namespace lead
