// Fixture: constructing a Matrix temporary inside a registered operator
// kernel body — a function taking `const OpCall&` — must be flagged
// (rule: matrix-in-kernel). Kernels replay inside arena-planned
// execution plans, so a Matrix temp heap-allocates on every replay.
struct TensorView {
  float* data;
  int rows;
  int cols;
};
struct OpCall {
  const TensorView* in;
  TensorView out;
};
struct Matrix {
  Matrix(int r, int c);
  float* data();
};
// The function-pointer alias mentions `const OpCall&` with no body and
// must not confuse the rule.
using OpKernel = void (*)(const OpCall&);

void BadCopyKernel(const OpCall& call) {
  Matrix scratch(call.out.rows, call.out.cols);
  (void)scratch;
}

void AllowedScratchKernel(const OpCall& call) {
  Matrix scratch(call.out.rows, 1);  // lead-lint: allow(matrix-in-kernel)
  (void)scratch;
}

// Not a kernel: Matrix temporaries outside `const OpCall&` functions are
// fine.
void PlainHelper(int rows, int cols) {
  Matrix scratch(rows, cols);
  (void)scratch;
}
