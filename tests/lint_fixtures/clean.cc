// Fixture: idiomatic project code; must produce no findings, including
// strings and comments that merely mention rand(), new, or time(nullptr).
#include <map>
#include <memory>
#include <string>
#include <vector>

// A comment that says rand() and delete must not trip the lexer.
std::string Describe() { return "call rand() at time(nullptr)"; }

int Sum(const std::map<std::string, int>& counts) {
  int total = 0;
  for (const auto& [key, value] : counts) {
    total += value;
  }
  return total;
}

std::unique_ptr<std::vector<int>> MakeBuffer(int n) {
  return std::make_unique<std::vector<int>>(static_cast<size_t>(n));
}

bool Close(float a, float b) {
  const float diff = a > b ? a - b : b - a;
  return diff < 1e-6f;
}
