// Without a signal-scope marker the signal-safety rule stays inert:
// ordinary code may allocate and use the standard library freely.
#include <cstdlib>
#include <string>

namespace lead {

void Ordinary() {
  std::string label = "x";
  void* raw = std::malloc(16);
  std::free(raw);
  (void)label;
}

}  // namespace lead
