// status-path: consumed locals and propagating branches stay quiet.
#include "common/status.h"

namespace lead {

Status Step();

Status Propagates() {
  Status st = Step();
  if (!st.ok()) return st;
  return Status::Ok();
}

}  // namespace lead
