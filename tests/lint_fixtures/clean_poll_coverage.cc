// poll-coverage: polled streaming loops pass.
#include "common/cancel.h"
#include "common/stage_queue.h"

namespace lead {

int Drain(BoundedQueue<int>& queue, const CancelToken& token) {
  int total = 0;
  int item = 0;
  while (queue.Pop(&item)) {
    if (!token.Check().ok()) break;
    total += item;
  }
  for (;;) {
    if (CurrentCancel().Cancelled()) break;
    ++total;
  }
  return total;
}

}  // namespace lead
