// A stale allow marker: suppresses nothing, flagged by --report-allows.
namespace lead {

inline int Answer() {
  return 42;  // lead-lint: allow(raw-new)
}

}  // namespace lead
