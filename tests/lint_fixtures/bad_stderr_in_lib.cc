// Fixture: direct stderr output in library code must be flagged when
// linted with --lib (rule: stderr); obs/log.h is the sanctioned path.
#include <cstdio>
#include <iostream>

void Warn(int n) { std::fprintf(stderr, "n = %d\n", n); }
void Cry(int n) { std::cerr << n << "\n"; }
