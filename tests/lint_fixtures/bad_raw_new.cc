// Fixture: raw new must be flagged (rule: raw-new).
int* Make() { return new int(7); }
