// Fixture: a header without #pragma once must be flagged (rule:
// pragma-once).
#ifndef LINT_FIXTURES_BAD_PRAGMA_ONCE_H_
#define LINT_FIXTURES_BAD_PRAGMA_ONCE_H_

int LegacyGuardedFunction();

#endif  // LINT_FIXTURES_BAD_PRAGMA_ONCE_H_
