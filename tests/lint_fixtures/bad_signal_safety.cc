// signal-safety: async-signal-unsafe constructs in a file whose header
// comment declares lead-lint: signal-scope (this comment is the marker).
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>

namespace lead {

void Handler() {
  void* raw = std::malloc(16);
  std::fprintf(stderr, "sampled\n");
  std::string label = "x";
  static std::mutex mu;
  std::free(raw);
  (void)label;
  (void)mu;
}

}  // namespace lead
