// Fixture: exit() in library code must be flagged when linted with
// --lib (rule: exit-in-lib).
#include <cstdlib>

void Bail() { exit(1); }
