// lock-scope: RAII guards pass.
#include "common/annotate.h"

namespace lead {

struct Worker {
  void Safe() {
    MutexLock lock(mu_);
    ++count_;
  }
  Mutex mu_;
  int count_ = 0;
};

}  // namespace lead
