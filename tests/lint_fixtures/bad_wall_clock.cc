// Fixture: wall-clock seeding must be flagged (rule: wall-clock).
#include <ctime>

long Now() { return static_cast<long>(time(nullptr)); }
