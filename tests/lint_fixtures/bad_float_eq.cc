// Fixture: exact floating-point equality must be flagged (rule:
// float-eq).
bool IsUnit(float x) { return x == 1.0f; }
