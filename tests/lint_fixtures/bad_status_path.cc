// status-path: silent failure paths in Status-returning functions.
#include "common/status.h"

namespace lead {

Status Step();
void Note();

Status UnconsumedLocal() {
  Status st = Step();
  return Status::Ok();
}

Status SilentBranch() {
  Status st = Step();
  if (!st.ok()) {
    Note();
  }
  return Status::Ok();
}

}  // namespace lead
