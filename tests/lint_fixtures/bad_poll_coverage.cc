// poll-coverage: unbounded streaming loops without a cancellation poll.
#include "common/stage_queue.h"

namespace lead {

int Drain(BoundedQueue<int>& queue) {
  int total = 0;
  int item = 0;
  while (queue.Pop(&item)) {
    total += item;
  }
  for (;;) {
    if (total > 100) break;
    ++total;
  }
  return total;
}

}  // namespace lead
