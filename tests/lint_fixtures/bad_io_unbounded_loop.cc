// Fixture for the io-unbounded-loop rule: reader loops over external
// input with no cancellation poll. Linted with --lib (stands in for a
// file under src/io/).
#include <istream>
#include <string>

void ScanTags(const std::string& text) {
  std::size_t pos = 0;
  while (true) {  // line 9: unbounded tag scan, no poll
    const std::size_t begin = text.find("<trk>", pos);
    if (begin == std::string::npos) break;
    pos = begin + 5;
  }
}

int CountRows(std::istream& in) {
  int rows = 0;
  std::string line;
  while (std::getline(in, line)) {  // line 19: row loop, no poll
    ++rows;
  }
  return rows;
}

// A loop that polls is clean: the identifier is enough for the
// tokenizer-level heuristic.
bool PollCancel();
int CountRowsPolled(std::istream& in) {
  int rows = 0;
  std::string line;
  while (std::getline(in, line)) {
    if ((rows % 1024) == 0 && PollCancel()) break;
    ++rows;
  }
  return rows;
}

// Bounded-by-construction loops carry the allow marker.
int SplitFields(const std::string& line) {
  int fields = 0;
  std::size_t pos = 0;
  while (true) {  // lead-lint: allow(io-unbounded-loop)
    const std::size_t comma = line.find(',', pos);
    ++fields;
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return fields;
}
