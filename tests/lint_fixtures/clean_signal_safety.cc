// signal-safety: lock-free atomics and same-thread TLS reads are the
// whole allowed vocabulary in handler code. lead-lint: signal-scope
#include <atomic>
#include <cstdint>

namespace lead {

std::atomic<uint64_t> g_samples{0};

void Handler() {
  g_samples.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace lead
