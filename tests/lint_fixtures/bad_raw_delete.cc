// Fixture: raw delete must be flagged (rule: raw-delete).
void Destroy(int* p) { delete p; }
