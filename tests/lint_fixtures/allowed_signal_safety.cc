// signal-safety suppression: setup helpers in a marked file that are
// provably never reached from the handler. lead-lint: signal-scope
#include <cstdlib>

namespace lead {

void SetupOnce() {
  void* raw = std::malloc(16);  // lead-lint: allow(signal-safety)
  std::free(raw);               // lead-lint: allow(signal-safety)
}

}  // namespace lead
