// lock-scope allow markers: a sanctioned RAII boundary.
#include <mutex>

namespace lead {

class Guard {
 public:
  explicit Guard(std::mutex& mu) : mu_(mu) {
    mu_.lock();  // lead-lint: allow(lock-scope)
  }
  ~Guard() {
    mu_.unlock();  // lead-lint: allow(lock-scope)
  }

 private:
  std::mutex& mu_;
};

}  // namespace lead
