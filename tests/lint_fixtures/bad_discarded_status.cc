// Fixture: a dropped Status result must be flagged (rule:
// discarded-status). The declaration below is what teaches the linter
// that SaveModel returns a Status.
struct Status {};

Status SaveModel(const char* path);

void Checkpoint() {
  SaveModel("/tmp/model.bin");
}
