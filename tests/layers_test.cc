// Gradient checks and behavioural tests for nn layers.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "gradcheck.h"
#include "nn/attention.h"
#include "nn/gru.h"
#include "nn/linear.h"
#include "nn/lstm.h"
#include "nn/ops.h"

namespace lead::nn {
namespace {

using ::lead::testing::ExpectGradientsMatch;

Matrix RandomInput(int rows, int cols, uint64_t seed) {
  Rng rng(seed);
  return Matrix::Uniform(rows, cols, 1.0f, &rng);
}

TEST(LinearTest, ShapesAndBias) {
  Rng rng(1);
  Linear linear(3, 2, &rng);
  const Variable x = Variable::Constant(Matrix::Zeros(4, 3));
  const Variable y = linear.Forward(x);
  EXPECT_EQ(y.rows(), 4);
  EXPECT_EQ(y.cols(), 2);
  // Zero input -> bias (zero-initialized).
  EXPECT_FLOAT_EQ(y.value().at(0, 0), 0.0f);
}

TEST(LinearTest, GradCheck) {
  Rng rng(2);
  Linear linear(3, 2, &rng);
  const Variable x = Variable::Constant(RandomInput(5, 3, 11));
  const Variable target = Variable::Constant(RandomInput(5, 2, 12));
  ExpectGradientsMatch(&linear, [&] {
    return MseLoss(linear.Forward(x), target);
  });
}

TEST(LstmTest, ForwardShapes) {
  Rng rng(3);
  LstmCell lstm(4, 8, &rng);
  const Variable x = Variable::Constant(RandomInput(6, 4, 13));
  const Variable h = lstm.ForwardSequence(x);
  EXPECT_EQ(h.rows(), 6);
  EXPECT_EQ(h.cols(), 8);
}

TEST(LstmTest, HiddenStatesBounded) {
  Rng rng(4);
  LstmCell lstm(4, 8, &rng);
  const Variable x = Variable::Constant(RandomInput(20, 4, 14));
  const Variable h = lstm.ForwardSequence(x);
  for (int i = 0; i < h.value().size(); ++i) {
    EXPECT_LT(std::fabs(h.value().data()[i]), 1.0f);
  }
}

TEST(LstmTest, StepMatchesForwardSequence) {
  Rng rng(5);
  LstmCell lstm(3, 5, &rng);
  const Matrix input = RandomInput(4, 3, 15);
  const Variable x = Variable::Constant(input);
  const Variable seq_out = lstm.ForwardSequence(x);
  LstmCell::State state = lstm.InitialState();
  for (int t = 0; t < 4; ++t) {
    Matrix row(1, 3);
    for (int c = 0; c < 3; ++c) row.at(0, c) = input.at(t, c);
    state = lstm.Step(Variable::Constant(row), state);
    for (int c = 0; c < 5; ++c) {
      EXPECT_NEAR(state.h.value().at(0, c), seq_out.value().at(t, c), 1e-5);
    }
  }
}

TEST(LstmTest, GradCheckSequence) {
  Rng rng(6);
  LstmCell lstm(3, 4, &rng);
  const Variable x = Variable::Constant(RandomInput(5, 3, 16));
  const Variable target = Variable::Constant(RandomInput(5, 4, 17));
  ExpectGradientsMatch(&lstm, [&] {
    return MseLoss(lstm.ForwardSequence(x), target);
  });
}

TEST(LstmTest, GradCheckConstantInput) {
  Rng rng(7);
  LstmCell lstm(4, 4, &rng);
  const Variable v = Variable::Constant(RandomInput(1, 4, 18));
  const Variable target = Variable::Constant(RandomInput(6, 4, 19));
  ExpectGradientsMatch(&lstm, [&] {
    return MseLoss(lstm.ForwardConstantInput(v, 6), target);
  });
}

TEST(BiLstmTest, OutputConcatsBothDirections) {
  Rng rng(8);
  BiLstm bilstm(3, 4, &rng);
  const Variable x = Variable::Constant(RandomInput(5, 3, 20));
  const Variable y = bilstm.Forward(x);
  EXPECT_EQ(y.rows(), 5);
  EXPECT_EQ(y.cols(), 8);
}

TEST(BiLstmTest, GradCheck) {
  Rng rng(9);
  BiLstm bilstm(3, 3, &rng);
  const Variable x = Variable::Constant(RandomInput(4, 3, 21));
  const Variable target = Variable::Constant(RandomInput(4, 6, 22));
  ExpectGradientsMatch(&bilstm, [&] {
    return MseLoss(bilstm.Forward(x), target);
  });
}

TEST(BiLstmTest, SingleStepSequenceWorks) {
  Rng rng(10);
  BiLstm bilstm(3, 4, &rng);
  const Variable x = Variable::Constant(RandomInput(1, 3, 23));
  const Variable y = bilstm.Forward(x);
  EXPECT_EQ(y.rows(), 1);
  EXPECT_EQ(y.cols(), 8);
}

TEST(GruTest, ForwardShapes) {
  Rng rng(11);
  GruCell gru(4, 6, &rng);
  const Variable x = Variable::Constant(RandomInput(7, 4, 24));
  const Variable h = gru.ForwardSequence(x);
  EXPECT_EQ(h.rows(), 7);
  EXPECT_EQ(h.cols(), 6);
}

TEST(GruTest, GradCheck) {
  Rng rng(12);
  GruCell gru(3, 4, &rng);
  const Variable x = Variable::Constant(RandomInput(5, 3, 25));
  const Variable target = Variable::Constant(RandomInput(5, 4, 26));
  ExpectGradientsMatch(&gru, [&] {
    return MseLoss(gru.ForwardSequence(x), target);
  });
}

TEST(AttentionTest, OutputIsConvexCombinationOfHiddenStates) {
  Rng rng(13);
  LastQueryAttention attention(4, 4, &rng);
  // Hidden states all equal -> the weighted aggregate must equal them.
  Matrix h(3, 4);
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 4; ++c) {
      h.at(r, c) = 0.5f - 0.1f * static_cast<float>(c);
    }
  }
  const Variable out = attention.Forward(Variable::Constant(h));
  EXPECT_EQ(out.rows(), 1);
  for (int c = 0; c < 4; ++c) {
    EXPECT_NEAR(out.value().at(0, c), 0.5f - 0.1f * static_cast<float>(c),
                1e-5);
  }
}

TEST(AttentionTest, GradCheck) {
  Rng rng(14);
  LastQueryAttention attention(4, 4, &rng);
  const Variable h = Variable::Constant(RandomInput(5, 4, 27));
  const Variable target = Variable::Constant(RandomInput(1, 4, 28));
  ExpectGradientsMatch(&attention, [&] {
    return MseLoss(attention.Forward(h), target);
  });
}

TEST(ModuleTest, NamedParametersIncludeChildren) {
  Rng rng(15);
  BiLstm bilstm(3, 4, &rng);
  const std::vector<NamedParameter> params = bilstm.NamedParameters();
  // 2 cells x 3 tensors each.
  EXPECT_EQ(params.size(), 6u);
  EXPECT_EQ(params[0].name, "fwd.w_ih");
  EXPECT_GT(bilstm.NumParameters(), 0);
}

// Parameterized sweep: LSTM gradients must be correct across sequence
// lengths (including length 1).
class LstmLengthSweep : public ::testing::TestWithParam<int> {};

TEST_P(LstmLengthSweep, GradCheckAtLength) {
  const int length = GetParam();
  Rng rng(16);
  LstmCell lstm(2, 3, &rng);
  const Variable x = Variable::Constant(RandomInput(length, 2, 100 + length));
  const Variable target =
      Variable::Constant(RandomInput(length, 3, 200 + length));
  ExpectGradientsMatch(
      &lstm, [&] { return MseLoss(lstm.ForwardSequence(x), target); },
      /*checks_per_param=*/3);
}

INSTANTIATE_TEST_SUITE_P(Lengths, LstmLengthSweep,
                         ::testing::Values(1, 2, 3, 8, 17));

}  // namespace
}  // namespace lead::nn
