// Randomized property tests over the trajectory pipeline: Definition 2's
// stay-point conditions, segmentation coverage, candidate-segment
// consistency, and noise-filter invariants, checked against randomly
// generated truck-like tracks.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/autoencoder.h"
#include "core/pipeline.h"
#include "traj/noise_filter.h"
#include "traj/segmentation.h"
#include "traj/stay_point.h"

namespace lead {
namespace {

constexpr geo::LatLng kOrigin{32.0, 120.9};

// A random alternation of dwells and drives with GPS noise — not
// necessarily clean stay points, which is the point.
traj::RawTrajectory RandomTrack(uint64_t seed) {
  Rng rng(seed);
  traj::RawTrajectory t;
  t.trajectory_id = "prop_" + std::to_string(seed);
  t.truck_id = "truck";
  double east = 0.0;
  double north = 0.0;
  int64_t time = 1'600'000'000 + rng.UniformInt(0, 86400);
  const int phases = rng.UniformInt(2, 8);
  for (int phase = 0; phase < phases; ++phase) {
    if (rng.Bernoulli(0.5)) {
      // Dwell: 5-40 min around the current spot.
      const int samples = rng.UniformInt(2, 12);
      for (int i = 0; i < samples; ++i) {
        t.points.push_back(
            {geo::OffsetMeters(kOrigin, east + rng.Gaussian(0, 40),
                               north + rng.Gaussian(0, 40)),
             time});
        time += rng.UniformInt(90, 240);
      }
    } else {
      // Drive: random direction, 1-15 km.
      const double bearing = rng.Uniform(0, 2 * M_PI);
      const double dist = rng.Uniform(1000, 15000);
      const int samples = rng.UniformInt(2, 15);
      for (int i = 0; i < samples; ++i) {
        east += dist / samples * std::sin(bearing);
        north += dist / samples * std::cos(bearing);
        t.points.push_back(
            {geo::OffsetMeters(kOrigin, east + rng.Gaussian(0, 15),
                               north + rng.Gaussian(0, 15)),
             time});
        time += rng.UniformInt(90, 240);
      }
    }
  }
  return t;
}

class PipelinePropertySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PipelinePropertySweep, StayPointsSatisfyDefinition2) {
  const traj::RawTrajectory track = RandomTrack(GetParam());
  const traj::StayPointOptions options;
  const std::vector<traj::StayPoint> stays =
      traj::ExtractStayPoints(track, options);
  for (const traj::StayPoint& sp : stays) {
    const traj::GpsPoint& anchor = track.points[sp.range.begin];
    // All successors within D_max of the anchor.
    for (int k = sp.range.begin + 1; k <= sp.range.end; ++k) {
      EXPECT_LE(geo::DistanceMeters(anchor.pos, track.points[k].pos),
                options.max_distance_m + 1e-6);
    }
    // The next point (if any) leaves the disc.
    if (sp.range.end + 1 < track.size()) {
      EXPECT_GT(
          geo::DistanceMeters(anchor.pos, track.points[sp.range.end + 1].pos),
          options.max_distance_m);
    }
    // Duration condition.
    EXPECT_GE(sp.duration_s(), options.min_duration_s);
    // Summary fields consistent.
    EXPECT_EQ(sp.arrival_t, track.points[sp.range.begin].t);
    EXPECT_EQ(sp.departure_t, track.points[sp.range.end].t);
  }
}

TEST_P(PipelinePropertySweep, SegmentationPartitionsTrack) {
  const traj::RawTrajectory track = RandomTrack(GetParam());
  const traj::Segmentation seg =
      traj::Segment(track, traj::ExtractStayPoints(track));
  std::vector<int> covered(track.size(), 0);
  for (const traj::StayPoint& sp : seg.stays) {
    for (int i = sp.range.begin; i <= sp.range.end; ++i) covered[i] += 1;
  }
  for (const traj::MoveSegment& mp : seg.moves) {
    if (!mp.has_points) continue;
    for (int i = mp.range.begin; i <= mp.range.end; ++i) covered[i] += 1;
  }
  for (int i = 0; i < track.size(); ++i) {
    ASSERT_EQ(covered[i], 1) << "point " << i << " seed " << GetParam();
  }
  EXPECT_EQ(seg.moves.size(), seg.stays.size() + 1);
}

TEST_P(PipelinePropertySweep, CandidateSegmentsCoverCandidateRange) {
  const traj::RawTrajectory track = RandomTrack(GetParam());
  core::ProcessedTrajectory pt;
  pt.cleaned = track;
  pt.segmentation = traj::Segment(track, traj::ExtractStayPoints(track));
  if (pt.segmentation.num_stays() < 2) return;  // nothing to check
  pt.candidates = traj::GenerateCandidates(pt.segmentation.num_stays());
  pt.features = nn::Matrix(track.size(), core::kFeatureDims);

  for (const traj::Candidate& c : pt.candidates) {
    const core::CandidateSegments segments =
        core::BuildCandidateSegments(pt, c);
    int total_rows = 0;
    for (const nn::Variable& v : segments.sp_seqs) total_rows += v.rows();
    for (const nn::Variable& v : segments.mp_seqs) {
      if (v.defined()) total_rows += v.rows();
    }
    const traj::IndexRange range = traj::CandidateRange(pt.segmentation, c);
    EXPECT_EQ(total_rows, range.size());
    EXPECT_EQ(static_cast<int>(segments.sp_seqs.size()),
              c.end_sp - c.start_sp + 1);
    EXPECT_EQ(static_cast<int>(segments.mp_seqs.size()),
              c.end_sp - c.start_sp);
  }
}

TEST_P(PipelinePropertySweep, NoiseFilterOutputHasBoundedSpeeds) {
  traj::RawTrajectory track = RandomTrack(GetParam());
  // Inject teleport outliers.
  Rng rng(GetParam() ^ 0xff);
  for (traj::GpsPoint& p : track.points) {
    if (rng.Bernoulli(0.05)) {
      p.pos = geo::OffsetMeters(p.pos, rng.Uniform(-30000, 30000),
                                rng.Uniform(-30000, 30000));
    }
  }
  const traj::NoiseFilterOptions options;
  const traj::NoiseFilterResult result = traj::FilterNoise(track, options);
  for (size_t i = 1; i < result.cleaned.points.size(); ++i) {
    EXPECT_LE(traj::SpeedKmh(result.cleaned.points[i - 1],
                             result.cleaned.points[i]),
              options.max_speed_kmh + 1e-9);
  }
  // Removed + kept == input.
  EXPECT_EQ(result.cleaned.size() +
                static_cast<int>(result.removed_indices.size()),
            track.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelinePropertySweep,
                         ::testing::Range<uint64_t>(1000, 1030));

}  // namespace
}  // namespace lead
