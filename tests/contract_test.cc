// LEAD_CHECK_SHAPES contract death tests: a shape-mismatched op must
// abort naming the offending op and both shapes, double Backward()
// through one graph must be caught, and the first op to produce a
// non-finite value must be named. In builds without the flag the whole
// suite skips (the contracts compile to empty inline functions there).
#include <limits>
#include <utility>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/batch.h"
#include "nn/linear.h"
#include "nn/lstm.h"
#include "nn/matrix.h"
#include "nn/ops.h"
#include "nn/variable.h"

namespace lead::nn {
namespace {

#ifndef LEAD_CHECK_SHAPES

TEST(ContractTest, SkippedWithoutCheckShapes) {
  GTEST_SKIP() << "build with -DLEAD_CHECK_SHAPES=ON to run contract "
                  "death tests";
}

#else

using ContractDeathTest = ::testing::Test;

TEST(ContractDeathTest, MatMulMismatchNamesOpAndBothShapes) {
  const Variable a = Variable::Constant(Matrix::Zeros(2, 3));
  const Variable b = Variable::Constant(Matrix::Zeros(4, 5));
  EXPECT_DEATH((void)MatMul(a, b),
               "op MatMul: inner dimensions must agree: "
               "lhs \\[2 x 3\\] vs rhs \\[4 x 5\\]");
}

TEST(ContractDeathTest, AddMismatchNamesOpAndBothShapes) {
  const Variable a = Variable::Constant(Matrix::Zeros(2, 3));
  const Variable b = Variable::Constant(Matrix::Zeros(3, 2));
  EXPECT_DEATH((void)Add(a, b),
               "op Add: .*lhs \\[2 x 3\\] vs rhs \\[3 x 2\\]");
}

TEST(ContractDeathTest, SliceColsOutOfRangeNamesOp) {
  const Variable a = Variable::Constant(Matrix::Zeros(2, 4));
  EXPECT_DEATH((void)SliceCols(a, 3, 2), "op SliceCols");
}

TEST(ContractDeathTest, LinearLayerBoundaryNamesLayer) {
  Rng rng(1);
  const Linear layer(/*in_features=*/4, /*out_features=*/2, &rng);
  const Variable x = Variable::Constant(Matrix::Zeros(1, 3));
  EXPECT_DEATH((void)layer.Forward(x),
               "op Linear::Forward: .*lhs \\[1 x 3\\]");
}

TEST(ContractDeathTest, LstmSequenceBoundaryNamesLayer) {
  Rng rng(1);
  const LstmCell cell(/*input_size=*/4, /*hidden_size=*/3, &rng);
  const Variable x = Variable::Constant(Matrix::Zeros(5, 2));
  EXPECT_DEATH((void)cell.ForwardSequence(x),
               "op LstmCell::ForwardSequence");
}

TEST(ContractDeathTest, DoubleBackwardThroughOneGraphIsCaught) {
  Variable x = Variable::Parameter(Matrix::Full(1, 1, 2.0f));
  const Variable y = Mul(x, x);
  Backward(y);
  EXPECT_DEATH(Backward(y), "double Backward\\(\\)");
}

TEST(ContractDeathTest, FirstNaNOriginNamesTheOp) {
  Matrix poisoned(1, 2);
  poisoned.at(0, 1) = std::numeric_limits<float>::quiet_NaN();
  // Constant() builds a leaf without a forward scan; the first *op* to
  // emit the non-finite value is Tanh, and it must be the one named.
  const Variable x = Variable::Constant(std::move(poisoned));
  EXPECT_DEATH((void)Tanh(x),
               "op Tanh: first non-finite output value at \\[0, 1\\]");
}

#endif  // LEAD_CHECK_SHAPES

}  // namespace
}  // namespace lead::nn
