// Tests for GPX ingestion/export and ISO-8601 parsing.
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "io/gpx.h"

namespace lead::io {
namespace {

TEST(Iso8601Test, ParsesKnownTimes) {
  // 2020-09-01T00:00:00Z == 1598918400.
  auto t = ParseIso8601Utc("2020-09-01T00:00:00Z");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(*t, 1598918400);
  t = ParseIso8601Utc("1970-01-01T00:00:00Z");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(*t, 0);
  t = ParseIso8601Utc("2020-02-29T12:30:45Z");  // leap day
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(*t, 1582979445);
}

TEST(Iso8601Test, ToleratesFractionalSeconds) {
  auto t = ParseIso8601Utc("2020-09-01T00:00:00.500Z");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(*t, 1598918400);
}

TEST(Iso8601Test, RejectsGarbageAndNonUtc) {
  EXPECT_FALSE(ParseIso8601Utc("not a time").ok());
  EXPECT_FALSE(ParseIso8601Utc("2020-13-01T00:00:00Z").ok());
  EXPECT_FALSE(ParseIso8601Utc("2020-09-01T00:00:00+08:00").ok());
}

TEST(Iso8601Test, FormatRoundTrips) {
  for (const int64_t t : {0LL, 1598918400LL, 1600000123LL}) {
    auto parsed = ParseIso8601Utc(FormatIso8601Utc(t));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, t);
  }
}

TEST(GpxTest, ParsesMinimalDocument) {
  std::stringstream in(R"(<?xml version="1.0"?>
<gpx version="1.1" creator="test">
<trk><name>truck_7_day_0</name><trkseg>
<trkpt lat="32.0100000" lon="120.9000000"><time>2020-09-01T08:00:00Z</time></trkpt>
<trkpt lat="32.0110000" lon="120.9010000"><time>2020-09-01T08:02:00Z</time></trkpt>
</trkseg></trk>
</gpx>)");
  auto tracks = ReadGpx(in);
  ASSERT_TRUE(tracks.ok()) << tracks.status();
  ASSERT_EQ(tracks->size(), 1u);
  const traj::RawTrajectory& t = (*tracks)[0];
  EXPECT_EQ(t.trajectory_id, "truck_7_day_0");
  ASSERT_EQ(t.points.size(), 2u);
  EXPECT_NEAR(t.points[0].pos.lat, 32.01, 1e-6);
  EXPECT_EQ(t.points[1].t - t.points[0].t, 120);
}

TEST(GpxTest, UnnamedTracksGetGeneratedIds) {
  std::stringstream in(
      "<gpx><trk><trkseg>"
      "<trkpt lat=\"32.0\" lon=\"120.9\"><time>2020-09-01T08:00:00Z</time>"
      "</trkpt></trkseg></trk>"
      "<trk><trkseg>"
      "<trkpt lat=\"32.1\" lon=\"121.0\"><time>2020-09-01T09:00:00Z</time>"
      "</trkpt></trkseg></trk></gpx>");
  auto tracks = ReadGpx(in);
  ASSERT_TRUE(tracks.ok()) << tracks.status();
  ASSERT_EQ(tracks->size(), 2u);
  EXPECT_EQ((*tracks)[0].trajectory_id, "gpx_track_0");
  EXPECT_EQ((*tracks)[1].trajectory_id, "gpx_track_1");
}

TEST(GpxTest, RejectsMalformedDocuments) {
  std::stringstream not_gpx("<kml></kml>");
  EXPECT_FALSE(ReadGpx(not_gpx).ok());
  std::stringstream no_time(
      "<gpx><trk><trkseg><trkpt lat=\"32.0\" lon=\"120.9\"></trkpt>"
      "</trkseg></trk></gpx>");
  EXPECT_FALSE(ReadGpx(no_time).ok());
  std::stringstream no_coords(
      "<gpx><trk><trkseg><trkpt><time>2020-09-01T08:00:00Z</time></trkpt>"
      "</trkseg></trk></gpx>");
  EXPECT_FALSE(ReadGpx(no_coords).ok());
  std::stringstream unterminated("<gpx><trk><trkseg>");
  EXPECT_FALSE(ReadGpx(unterminated).ok());
}

TEST(GpxTest, TruncationErrorsCarryLineNumbers) {
  // A document cut off mid-track: the diagnostic points at the line of
  // the unterminated <trk>, not just "parse error somewhere".
  std::stringstream truncated(
      "<gpx>\n"
      "<trk><trkseg>\n"
      "<trkpt lat=\"32.0\" lon=\"120.9\">"
      "<time>2020-09-01T08:00:00Z</time></trkpt>\n"
      "</trkseg>\n");
  const auto result = ReadGpx(truncated);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("at line 2"), std::string::npos)
      << result.status().ToString();
  EXPECT_NE(result.status().message().find("truncated"), std::string::npos)
      << result.status().ToString();

  // Cut off mid-point: the diagnostic names the <trkpt>'s own line.
  std::stringstream mid_point(
      "<gpx>\n"
      "<trk><trkseg>\n"
      "<trkpt lat=\"32.0\" lon=\"120.9\"><time>2020-09-01T08:00"
      "</trkseg></trk></gpx>\n");
  const auto point_result = ReadGpx(mid_point);
  ASSERT_FALSE(point_result.ok());
  EXPECT_NE(point_result.status().message().find("at line 3"),
            std::string::npos)
      << point_result.status().ToString();
}

TEST(GpxTest, BadPointErrorsNameTheOffendingLine) {
  std::stringstream bad_coords(
      "<gpx>\n"
      "<trk><trkseg>\n"
      "<trkpt lat=\"32.0\" lon=\"120.9\">"
      "<time>2020-09-01T08:00:00Z</time></trkpt>\n"
      "<trkpt lat=\"nan\" lon=\"120.9\">"
      "<time>2020-09-01T08:01:00Z</time></trkpt>\n"
      "</trkseg></trk></gpx>\n");
  const auto result = ReadGpx(bad_coords);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("at line 4"), std::string::npos)
      << result.status().ToString();
}

TEST(GpxTest, RejectsNonFiniteAndOutOfRangeCoordinates) {
  for (const auto& [lat, lon] :
       std::vector<std::pair<const char*, const char*>>{
           {"nan", "120.9"}, {"32.0", "inf"}, {"90.5", "120.9"},
           {"32.0", "180.5"}}) {
    std::stringstream in(std::string("<gpx><trk><trkseg><trkpt lat=\"") +
                         lat + "\" lon=\"" + lon +
                         "\"><time>2020-09-01T08:00:00Z</time></trkpt>"
                         "</trkseg></trk></gpx>");
    const auto result = ReadGpx(in);
    ASSERT_FALSE(result.ok()) << lat << "," << lon;
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(GpxTest, WriteReadRoundTrip) {
  traj::RawTrajectory t;
  t.trajectory_id = "rt<&>";  // exercises XML escaping
  t.truck_id = "rt<&>";
  t.points = {
      {{32.0123456, 120.9876543}, 1598918400},
      {{32.0130000, 120.9880000}, 1598918520},
  };
  std::stringstream buffer;
  ASSERT_TRUE(WriteGpx({t}, buffer).ok());
  auto back = ReadGpx(buffer);
  ASSERT_TRUE(back.ok()) << back.status();
  ASSERT_EQ(back->size(), 1u);
  ASSERT_EQ((*back)[0].points.size(), 2u);
  EXPECT_NEAR((*back)[0].points[0].pos.lat, 32.0123456, 1e-6);
  EXPECT_NEAR((*back)[0].points[1].pos.lng, 120.988, 1e-6);
  EXPECT_EQ((*back)[0].points[0].t, 1598918400);
}

TEST(GpxTest, FileRoundTrip) {
  traj::RawTrajectory t;
  t.trajectory_id = "file_track";
  t.points = {{{32.0, 120.9}, 100}};
  const std::string path = ::testing::TempDir() + "/lead_gpx_test.gpx";
  ASSERT_TRUE(WriteGpxToFile({t}, path).ok());
  auto back = ReadGpxFromFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), 1u);
  std::remove(path.c_str());
  EXPECT_FALSE(ReadGpxFromFile("/nonexistent.gpx").ok());
}

}  // namespace
}  // namespace lead::io
