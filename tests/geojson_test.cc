// Tests for GeoJSON export.
#include <gtest/gtest.h>

#include <sstream>

#include "io/geojson.h"
#include "traj/stay_point.h"

namespace lead::io {
namespace {

constexpr geo::LatLng kOrigin{32.0, 120.9};

traj::RawTrajectory ThreeStayTrack() {
  traj::RawTrajectory t;
  t.trajectory_id = "gj";
  int64_t time = 0;
  auto stay = [&](double east) {
    for (int i = 0; i < 6; ++i) {
      t.points.push_back({geo::OffsetMeters(kOrigin, east + 5 * i, 0), time});
      time += 240;
    }
  };
  auto move = [&](double from, double to) {
    for (double e = from + 1500; e < to - 700; e += 1500) {
      t.points.push_back({geo::OffsetMeters(kOrigin, e, 0), time});
      time += 120;
    }
  };
  stay(0);
  move(0, 9000);
  stay(9000);
  move(9000, 18000);
  stay(18000);
  return t;
}

TEST(JsonEscapeTest, EscapesSpecials) {
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape(std::string("x\x01y", 3)), "x\\u0001y");
}

TEST(GeoJsonWriterTest, EmptyCollectionIsValid) {
  GeoJsonWriter writer;
  EXPECT_EQ(writer.ToString(),
            "{\"type\":\"FeatureCollection\",\"features\":[]}");
}

TEST(GeoJsonWriterTest, PointAndLineStringStructure) {
  GeoJsonWriter writer;
  writer.AddPoint(kOrigin, "\"name\":\"x\"");
  const traj::RawTrajectory t = ThreeStayTrack();
  writer.AddLineString(t.points, traj::IndexRange{0, 3}, "\"kind\":\"seg\"");
  const std::string json = writer.ToString();
  EXPECT_EQ(writer.feature_count(), 2);
  EXPECT_NE(json.find("\"type\":\"Point\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"LineString\""), std::string::npos);
  // Longitude first.
  EXPECT_NE(json.find("[120.9"), std::string::npos);
  // Balanced braces (crude well-formedness check).
  int depth = 0;
  for (char c : json) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(GeoJsonExportTest, DetectionHasAllPhases) {
  const traj::RawTrajectory t = ThreeStayTrack();
  const traj::Segmentation seg =
      traj::Segment(t, traj::ExtractStayPoints(t));
  ASSERT_EQ(seg.num_stays(), 3);
  GeoJsonWriter writer;
  AddDetection(t, seg, traj::Candidate{0, 1}, &writer);
  const std::string json = writer.ToString();
  EXPECT_NE(json.find("loaded_trajectory"), std::string::npos);
  EXPECT_NE(json.find("loading_stay_point"), std::string::npos);
  EXPECT_NE(json.find("unloading_stay_point"), std::string::npos);
  EXPECT_NE(json.find("ordinary_stay_point"), std::string::npos);
  // Candidate (0,1): no phase-1 line (track starts in the first stay),
  // but a phase-3 line must exist.
  EXPECT_NE(json.find("\"phase\":3"), std::string::npos);
}

TEST(GeoJsonExportTest, TrajectoryAndPois) {
  GeoJsonWriter writer;
  AddTrajectory(ThreeStayTrack(), &writer);
  std::vector<poi::Poi> pois = {
      {1, poi::Category::kChemicalFactory, kOrigin}};
  AddPois(pois, &writer);
  const std::string json = writer.ToString();
  EXPECT_NE(json.find("raw_trajectory"), std::string::npos);
  EXPECT_NE(json.find("chemical_factory"), std::string::npos);
}

TEST(GeoJsonReadTest, RoundTripPreservesTrack) {
  traj::RawTrajectory t = ThreeStayTrack();
  t.truck_id = "truck-7";
  GeoJsonWriter writer;
  AddTrajectory(t, &writer);
  std::istringstream in(writer.ToString());
  const auto result = ReadGeoJson(in);
  ASSERT_TRUE(result.ok()) << result.status().message();
  ASSERT_EQ(result.value().size(), 1u);
  const traj::RawTrajectory& back = result.value()[0];
  EXPECT_EQ(back.trajectory_id, "gj");
  EXPECT_EQ(back.truck_id, "truck-7");
  ASSERT_EQ(back.size(), t.size());
  for (int i = 0; i < t.size(); ++i) {
    EXPECT_EQ(back.points[i].t, t.points[i].t);
    // The writer prints %.6f, so round-trip error is at most 5e-7 deg.
    EXPECT_NEAR(back.points[i].pos.lat, t.points[i].pos.lat, 1e-6);
    EXPECT_NEAR(back.points[i].pos.lng, t.points[i].pos.lng, 1e-6);
  }
}

TEST(GeoJsonReadTest, SkipsNonLineStringFeatures) {
  GeoJsonWriter writer;
  writer.AddPoint(kOrigin, "\"kind\":\"poi\"");
  std::istringstream in(writer.ToString());
  const auto result = ReadGeoJson(in);
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_TRUE(result.value().empty());
}

TEST(GeoJsonReadTest, AssignsSyntheticTimesWithoutTimesProperty) {
  std::istringstream in(
      R"({"type":"FeatureCollection","features":[{"type":"Feature",)"
      R"("geometry":{"type":"LineString","coordinates":[[120.9,32.0],)"
      R"([120.91,32.01]]},"properties":{}}]})");
  const auto result = ReadGeoJson(in);
  ASSERT_TRUE(result.ok()) << result.status().message();
  ASSERT_EQ(result.value().size(), 1u);
  const traj::RawTrajectory& t = result.value()[0];
  EXPECT_EQ(t.trajectory_id, "geojson_0");
  ASSERT_EQ(t.size(), 2);
  EXPECT_LT(t.points[0].t, t.points[1].t);
  EXPECT_NEAR(t.points[0].pos.lat, 32.0, 1e-9);
  EXPECT_NEAR(t.points[0].pos.lng, 120.9, 1e-9);
}

TEST(GeoJsonReadTest, RejectsMalformedInput) {
  const char* bad[] = {
      "",
      "{",
      "[1,2]",
      "nonsense",
      "{\"type\":\"FeatureCollection\"}",
      "{\"type\":\"Feature\",\"features\":[]}",
      "{\"type\":\"FeatureCollection\",\"features\":[42]}",
      // Out-of-range coordinate.
      "{\"type\":\"FeatureCollection\",\"features\":[{\"type\":\"Feature\","
      "\"geometry\":{\"type\":\"LineString\",\"coordinates\":[[200,100]]},"
      "\"properties\":{}}]}",
      // times length mismatch.
      "{\"type\":\"FeatureCollection\",\"features\":[{\"type\":\"Feature\","
      "\"geometry\":{\"type\":\"LineString\",\"coordinates\":[[1,2],[3,4]]},"
      "\"properties\":{\"times\":[0]}}]}",
      // Trailing garbage after the document.
      "{\"type\":\"FeatureCollection\",\"features\":[]}}",
  };
  for (const char* text : bad) {
    std::istringstream in(text);
    EXPECT_FALSE(ReadGeoJson(in).ok()) << text;
  }
}

TEST(GeoJsonReadTest, CapsNestingDepth) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  std::istringstream in(deep);
  EXPECT_FALSE(ReadGeoJson(in).ok());
}

TEST(GeoJsonExportTest, WritesToFile) {
  GeoJsonWriter writer;
  writer.AddPoint(kOrigin, "\"a\":1");
  const std::string path = ::testing::TempDir() + "/lead_geojson_test.json";
  ASSERT_TRUE(writer.WriteToFile(path).ok());
  std::remove(path.c_str());
  EXPECT_FALSE(writer.WriteToFile("/nonexistent/nope/x.json").ok());
}

}  // namespace
}  // namespace lead::io
