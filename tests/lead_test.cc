// End-to-end tests: LEAD training/detection, variants, save/load, and the
// baselines, over a small simulated corpus shared across tests.
#include <cstdio>
#include <memory>

#include <gtest/gtest.h>

#include "baselines/sp_rnn.h"
#include "baselines/sp_rule.h"
#include "core/lead.h"
#include "eval/harness.h"

namespace lead {
namespace {

// One small corpus for the whole binary (building it is the slow part).
class LeadEndToEnd : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    eval::ExperimentConfig config = eval::DefaultConfig(1.0);
    config.world.num_background_pois = 3000;
    config.world.num_loading_facilities = 10;
    config.world.num_unloading_facilities = 20;
    config.world.num_rest_areas = 24;
    config.world.num_depots = 8;
    config.dataset.num_trajectories = 120;
    config.dataset.num_trucks = 60;
    config.sim.sample_interval_mean_s = 240.0;
    config.lead.train.autoencoder_epochs = 8;
    config.lead.train.detector_epochs = 40;
    config.lead.train.max_candidates_per_trajectory = 4;
    config.lead.train.batch_size = 8;
    config.lead.train.learning_rate = 1e-3f;
    config_ = std::make_unique<eval::ExperimentConfig>(config);
    auto data = eval::BuildExperiment(config);
    ASSERT_TRUE(data.ok()) << data.status();
    data_ = std::make_unique<eval::ExperimentData>(std::move(data).value());
  }
  static void TearDownTestSuite() {
    data_.reset();
    config_.reset();
  }

  static std::unique_ptr<eval::ExperimentConfig> config_;
  static std::unique_ptr<eval::ExperimentData> data_;
};

std::unique_ptr<eval::ExperimentConfig> LeadEndToEnd::config_;
std::unique_ptr<eval::ExperimentData> LeadEndToEnd::data_;

double EvaluateAccuracy(const eval::ExperimentData& data,
                        const eval::DetectFn& detect) {
  const eval::MethodResult result =
      eval::EvaluateMethod("m", data.split.test, detect);
  return result.accuracy.overall().accuracy_pct();
}

TEST_F(LeadEndToEnd, TrainedLeadBeatsChance) {
  core::LeadModel model(config_->lead);
  core::TrainingLog log;
  const Status status = model.Train(data_->TrainLabeled(),
                                    data_->ValLabeled(),
                                    data_->world->poi_index(), &log);
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_FALSE(log.autoencoder_mse.empty());
  EXPECT_FALSE(log.forward_kld.empty());
  EXPECT_FALSE(log.backward_kld.empty());

  const double acc = EvaluateAccuracy(*data_, [&](const auto& raw) {
    auto detection = model.Detect(raw, data_->world->poi_index());
    if (!detection.ok()) return StatusOr<traj::Candidate>(detection.status());
    return StatusOr<traj::Candidate>(detection->loaded);
  });
  // Random guessing over 3~91 candidates averages ~4%; the simulated
  // world is deliberately ambiguous (see DESIGN.md §3), so a small
  // corpus trained briefly clears a modest bar.
  EXPECT_GT(acc, 30.0);

  // Detection output invariants.
  auto detection =
      model.Detect(data_->split.test[0].raw, data_->world->poi_index());
  ASSERT_TRUE(detection.ok()) << detection.status();
  EXPECT_EQ(detection->candidates.size(), detection->probabilities.size());
  float max_p = 0.0f;
  for (float p : detection->probabilities) {
    EXPECT_GE(p, 0.0f);
    EXPECT_LE(p, 1.0f);
    max_p = std::max(max_p, p);
  }
  EXPECT_NEAR(max_p, 1.0f, 1e-5);  // min-max rescaled

  // Save/load round-trip must reproduce detections exactly.
  const std::string path = ::testing::TempDir() + "/lead_model.bin";
  ASSERT_TRUE(model.Save(path).ok());
  core::LeadModel reloaded(config_->lead);
  ASSERT_TRUE(reloaded.Load(path).ok());
  for (int i = 0; i < 5 && i < static_cast<int>(data_->split.test.size());
       ++i) {
    auto a = model.Detect(data_->split.test[i].raw,
                          data_->world->poi_index());
    auto b = reloaded.Detect(data_->split.test[i].raw,
                             data_->world->poi_index());
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a->loaded, b->loaded);
  }
  std::remove(path.c_str());
}

TEST_F(LeadEndToEnd, UntrainedModelRefusesToDetect) {
  core::LeadModel model(config_->lead);
  const auto result =
      model.Detect(data_->split.test[0].raw, data_->world->poi_index());
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(model.Save("/tmp/never_written.bin").ok());
}

TEST_F(LeadEndToEnd, VariantOptionsToggleTheRightKnobs) {
  const core::LeadOptions base = config_->lead;
  EXPECT_FALSE(core::MakeVariantOptions(base, core::LeadVariant::kNoPoi)
                   .pipeline.features.use_poi);
  EXPECT_FALSE(core::MakeVariantOptions(base, core::LeadVariant::kNoSel)
                   .autoencoder.use_attention);
  EXPECT_FALSE(core::MakeVariantOptions(base, core::LeadVariant::kNoHie)
                   .autoencoder.hierarchical);
  EXPECT_FALSE(core::MakeVariantOptions(base, core::LeadVariant::kNoGro)
                   .use_grouping);
  EXPECT_FALSE(core::MakeVariantOptions(base, core::LeadVariant::kNoFor)
                   .use_forward);
  EXPECT_FALSE(core::MakeVariantOptions(base, core::LeadVariant::kNoBac)
                   .use_backward);
  EXPECT_STREQ(core::LeadVariantName(core::LeadVariant::kNoGro),
               "LEAD-NoGro");
}

TEST_F(LeadEndToEnd, NoGroVariantTrainsAndDetects) {
  core::LeadOptions options =
      core::MakeVariantOptions(config_->lead, core::LeadVariant::kNoGro);
  options.train.autoencoder_epochs = 2;
  options.train.detector_epochs = 4;
  core::LeadModel model(options);
  core::TrainingLog log;
  ASSERT_TRUE(model
                  .Train(data_->TrainLabeled(), data_->ValLabeled(),
                         data_->world->poi_index(), &log)
                  .ok());
  EXPECT_FALSE(log.nogro_bce.empty());
  EXPECT_TRUE(log.forward_kld.empty());
  auto detection =
      model.Detect(data_->split.test[0].raw, data_->world->poi_index());
  ASSERT_TRUE(detection.ok()) << detection.status();
  EXPECT_LT(detection->loaded.start_sp, detection->loaded.end_sp);
}

TEST_F(LeadEndToEnd, NoForUsesOnlyBackwardDetector) {
  core::LeadOptions options =
      core::MakeVariantOptions(config_->lead, core::LeadVariant::kNoFor);
  options.train.autoencoder_epochs = 2;
  options.train.detector_epochs = 4;
  core::LeadModel model(options);
  core::TrainingLog log;
  ASSERT_TRUE(model
                  .Train(data_->TrainLabeled(), data_->ValLabeled(),
                         data_->world->poi_index(), &log)
                  .ok());
  EXPECT_TRUE(log.forward_kld.empty());
  EXPECT_FALSE(log.backward_kld.empty());
  EXPECT_TRUE(model.Detect(data_->split.test[0].raw,
                           data_->world->poi_index())
                  .ok());
}

TEST_F(LeadEndToEnd, SpRuleBaselineTrainsAndDetects) {
  baselines::SpRuleBaseline sp_r(config_->lead.pipeline, {});
  ASSERT_TRUE(sp_r.Train(data_->TrainLabeled()).ok());
  // Both endpoints of every training trajectory enter the white list.
  EXPECT_EQ(sp_r.whitelist_size(),
            2 * static_cast<int>(data_->split.train.size()));
  const auto detection = sp_r.Detect(data_->split.test[0].raw);
  ASSERT_TRUE(detection.ok()) << detection.status();
  EXPECT_LT(detection->loaded.start_sp, detection->loaded.end_sp);
  EXPECT_LT(detection->loaded.end_sp, detection->num_stays);
}

TEST_F(LeadEndToEnd, SpRnnBaselineLearnsSomething) {
  baselines::SpRnnOptions options;
  options.cell = baselines::RnnCellType::kLstm;
  options.hidden = 32;  // small for test speed
  options.train.detector_epochs = 6;
  options.train.batch_size = 32;
  options.train.learning_rate = 1e-3f;
  baselines::SpRnnBaseline sp_lstm(config_->lead.pipeline, options);
  std::vector<float> losses;
  ASSERT_TRUE(sp_lstm
                  .Train(data_->TrainLabeled(), data_->ValLabeled(),
                         data_->world->poi_index(), &losses, nullptr)
                  .ok());
  ASSERT_GE(losses.size(), 2u);
  EXPECT_LT(losses.back(), losses.front());
  const auto detection =
      sp_lstm.Detect(data_->split.test[0].raw, data_->world->poi_index());
  ASSERT_TRUE(detection.ok()) << detection.status();
}

TEST(GreedyDetectTest, EndpointCases) {
  using baselines::GreedyDetect;
  // Normal: first and last l/u become the endpoints.
  auto d = GreedyDetect({false, true, false, true, false});
  EXPECT_EQ(d.loaded, (traj::Candidate{1, 3}));
  EXPECT_FALSE(d.used_default);
  // Insufficient l/u stay points -> default full span.
  d = GreedyDetect({false, true, false});
  EXPECT_TRUE(d.used_default);
  EXPECT_EQ(d.loaded, (traj::Candidate{0, 2}));
  d = GreedyDetect({false, false});
  EXPECT_TRUE(d.used_default);
  EXPECT_EQ(d.loaded, (traj::Candidate{0, 1}));
  // All l/u.
  d = GreedyDetect({true, true, true});
  EXPECT_EQ(d.loaded, (traj::Candidate{0, 2}));
  EXPECT_FALSE(d.used_default);
}

TEST(MetricsTest, BucketBoundaries) {
  EXPECT_EQ(eval::BucketOf(3), 0);
  EXPECT_EQ(eval::BucketOf(5), 0);
  EXPECT_EQ(eval::BucketOf(6), 1);
  EXPECT_EQ(eval::BucketOf(11), 2);
  EXPECT_EQ(eval::BucketOf(14), 3);
  EXPECT_EQ(eval::BucketOf(2), -1);
  EXPECT_EQ(eval::BucketOf(15), -1);
  EXPECT_EQ(eval::BucketLabel(0), "3~5");
  EXPECT_EQ(eval::BucketLabel(eval::kNumBuckets), "3~14");
}

TEST(MetricsTest, AccuracyTableAggregates) {
  eval::AccuracyTable table;
  table.Add(4, true);
  table.Add(4, false);
  table.Add(13, true);
  EXPECT_EQ(table.bucket(0).total, 2);
  EXPECT_EQ(table.bucket(0).hits, 1);
  EXPECT_DOUBLE_EQ(table.bucket(0).accuracy_pct(), 50.0);
  EXPECT_EQ(table.bucket(3).total, 1);
  EXPECT_DOUBLE_EQ(table.overall().accuracy_pct(), 100.0 * 2 / 3);
}

TEST(MetricsTest, TimingTableMeans) {
  eval::TimingTable table;
  table.Add(4, 1.0);
  table.Add(4, 3.0);
  table.Add(7, 5.0);
  EXPECT_DOUBLE_EQ(table.mean_seconds(0), 2.0);
  EXPECT_DOUBLE_EQ(table.mean_seconds(1), 5.0);
  EXPECT_DOUBLE_EQ(table.overall_mean_seconds(), 3.0);
}

}  // namespace
}  // namespace lead
