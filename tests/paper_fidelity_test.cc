// Pins the default hyperparameters to the values the paper specifies
// (§VI-A "Implementation Details"), so accidental drift is caught.
#include <gtest/gtest.h>

#include "baselines/sp_rnn.h"
#include "baselines/sp_rule.h"
#include "core/lead.h"
#include "poi/poi.h"

namespace lead {
namespace {

TEST(PaperFidelityTest, RawTrajectoryProcessingDefaults) {
  const core::PipelineOptions options;
  // Noise filtering: V_max = 130 km/h.
  EXPECT_DOUBLE_EQ(options.noise.max_speed_kmh, 130.0);
  // Stay point extraction: D_max = 500 m, T_min = 15 min.
  EXPECT_DOUBLE_EQ(options.stay.max_distance_m, 500.0);
  EXPECT_EQ(options.stay.min_duration_s, 15 * 60);
  // POI feature: 100 m radius.
  EXPECT_DOUBLE_EQ(options.features.poi_radius_m, 100.0);
  EXPECT_TRUE(options.features.use_poi);
}

TEST(PaperFidelityTest, FeatureDimensions) {
  // 29 POI categories; 3 spatiotemporal dims; 32-dim feature vector.
  EXPECT_EQ(poi::kNumCategories, 29);
  EXPECT_EQ(core::kSpatioTemporalDims, 3);
  EXPECT_EQ(core::kFeatureDims, 32);
}

TEST(PaperFidelityTest, AutoencoderDefaults) {
  const core::AutoencoderOptions options;
  // 32 hidden units everywhere; compressed vector dimension 64.
  EXPECT_EQ(options.hidden, 32);
  EXPECT_EQ(options.cvec_dims(), 64);
  EXPECT_TRUE(options.use_attention);
  EXPECT_TRUE(options.hierarchical);
}

TEST(PaperFidelityTest, DetectorDefaults) {
  const core::DetectorOptions options;
  // All detector LSTMs have 64 hidden units; best L = 4.
  EXPECT_EQ(options.hidden, 64);
  EXPECT_EQ(options.num_layers, 4);
  EXPECT_EQ(options.input_dims, 64);
}

TEST(PaperFidelityTest, TrainingDefaults) {
  const core::TrainOptions options;
  // Adam with scheduled lr 1e-4; simulated batch B = 64; eps = 1e-5.
  EXPECT_FLOAT_EQ(options.learning_rate, 1e-4f);
  EXPECT_EQ(options.batch_size, 64);
  EXPECT_FLOAT_EQ(options.label_epsilon, 1e-5f);
  EXPECT_FLOAT_EQ(core::kDefaultLabelEpsilon, 1e-5f);
}

TEST(PaperFidelityTest, BaselineDefaults) {
  // SP-R searches 500 m around each stay point; SP-GRU/SP-LSTM use 128
  // hidden units.
  EXPECT_DOUBLE_EQ(baselines::SpRuleOptions().search_radius_m, 500.0);
  EXPECT_EQ(baselines::SpRnnOptions().hidden, 128);
}

TEST(PaperFidelityTest, CandidateCountsMatchSection3) {
  // "the number of stay points ... ranges from 3~14, so the number of
  //  generated candidate trajectories is moderate (3~91)".
  EXPECT_EQ(traj::NumCandidates(3), 3);
  EXPECT_EQ(traj::NumCandidates(14), 91);
}

}  // namespace
}  // namespace lead
