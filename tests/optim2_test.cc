// Tests for SGD, learning-rate schedulers and dropout.
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/linear.h"
#include "nn/ops.h"
#include "nn/scheduler.h"
#include "nn/sgd.h"

namespace lead::nn {
namespace {

TEST(SgdTest, ConvergesOnQuadratic) {
  Variable x = Variable::Parameter(Matrix::RowVector({4.0f, -2.0f}));
  const Variable target = Variable::Constant(Matrix::RowVector({1.0f, 1.0f}));
  Sgd sgd({x}, {.learning_rate = 0.05f, .momentum = 0.9f});
  for (int i = 0; i < 300; ++i) {
    Backward(MseLoss(x, target));
    sgd.StepAndZeroGrad();
  }
  EXPECT_NEAR(x.value().at(0, 0), 1.0f, 0.05f);
  EXPECT_NEAR(x.value().at(0, 1), 1.0f, 0.05f);
}

TEST(SgdTest, WeightDecayShrinksWeights) {
  Variable x = Variable::Parameter(Matrix::RowVector({10.0f}));
  // Zero-gradient loss: only weight decay acts.
  Sgd sgd({x}, {.learning_rate = 0.1f, .momentum = 0.0f,
                .weight_decay = 0.1f});
  for (int i = 0; i < 50; ++i) {
    sgd.StepAndZeroGrad();  // gradients are zero
  }
  EXPECT_LT(std::fabs(x.value().at(0, 0)), 10.0f);
  EXPECT_GT(x.value().at(0, 0), 0.0f);
}

TEST(SgdTest, LearningRateIsAdjustable) {
  Variable x = Variable::Parameter(Matrix::RowVector({1.0f}));
  Sgd sgd({x}, {.learning_rate = 0.5f});
  EXPECT_FLOAT_EQ(sgd.learning_rate(), 0.5f);
  sgd.set_learning_rate(0.25f);
  EXPECT_FLOAT_EQ(sgd.learning_rate(), 0.25f);
}

TEST(SchedulerTest, ConstantLr) {
  const ConstantLr schedule(0.01f);
  EXPECT_FLOAT_EQ(schedule.LearningRate(0), 0.01f);
  EXPECT_FLOAT_EQ(schedule.LearningRate(100), 0.01f);
}

TEST(SchedulerTest, StepDecayHalvesEveryStep) {
  const StepDecayLr schedule(1.0f, 0.5f, 10);
  EXPECT_FLOAT_EQ(schedule.LearningRate(0), 1.0f);
  EXPECT_FLOAT_EQ(schedule.LearningRate(9), 1.0f);
  EXPECT_FLOAT_EQ(schedule.LearningRate(10), 0.5f);
  EXPECT_FLOAT_EQ(schedule.LearningRate(25), 0.25f);
}

TEST(SchedulerTest, CosineDecayEndpoints) {
  const CosineDecayLr schedule(1.0f, 0.1f, 20);
  EXPECT_NEAR(schedule.LearningRate(0), 1.0f, 1e-5);
  EXPECT_NEAR(schedule.LearningRate(20), 0.1f, 1e-5);
  EXPECT_NEAR(schedule.LearningRate(40), 0.1f, 1e-5);  // clamped past end
  // Monotone decreasing.
  for (int e = 1; e <= 20; ++e) {
    EXPECT_LE(schedule.LearningRate(e), schedule.LearningRate(e - 1) + 1e-6);
  }
}

TEST(DropoutTest, IdentityAtZeroAndInInference) {
  Rng rng(1);
  const Variable x = Variable::Constant(Matrix::Full(4, 4, 2.0f));
  const Variable same = Dropout(x, 0.0f, &rng);
  EXPECT_EQ(same.node(), x.node());  // true identity
  NoGradGuard guard;
  const Variable inference = Dropout(x, 0.5f, &rng);
  EXPECT_EQ(inference.node(), x.node());
}

TEST(DropoutTest, ZeroesAndRescales) {
  Rng rng(2);
  const Variable x = Variable::Constant(Matrix::Full(50, 50, 1.0f));
  const Variable dropped = Dropout(x, 0.4f, &rng);
  int zeros = 0;
  double sum = 0.0;
  for (int i = 0; i < dropped.value().size(); ++i) {
    const float v = dropped.value().data()[i];
    // Dropout writes exact 0.0f into masked slots.
    if (v == 0.0f) {  // lead-lint: allow(float-eq)
      ++zeros;
    } else {
      EXPECT_NEAR(v, 1.0f / 0.6f, 1e-5);
    }
    sum += v;
  }
  // ~40% zeroed; expectation preserved.
  EXPECT_NEAR(zeros / 2500.0, 0.4, 0.05);
  EXPECT_NEAR(sum / 2500.0, 1.0, 0.06);
}

TEST(DropoutTest, GradientFlowsThroughMask) {
  Rng rng(3);
  Variable x = Variable::Parameter(Matrix::Full(1, 100, 1.0f));
  const Variable dropped = Dropout(x, 0.5f, &rng);
  Backward(Sum(dropped));
  // Gradient is 0 where dropped, 2.0 where kept.
  for (int i = 0; i < 100; ++i) {
    const float v = dropped.value().data()[i];
    const float g = x.grad().data()[i];
    // Dropout writes exact 0.0f into masked slots.
    if (v == 0.0f) {  // lead-lint: allow(float-eq)
      EXPECT_FLOAT_EQ(g, 0.0f);
    } else {
      EXPECT_NEAR(g, 2.0f, 1e-5);
    }
  }
}

TEST(OptimizerBaseTest, GradNormAndClipConsistentAcrossImpls) {
  Variable x = Variable::Parameter(Matrix::RowVector({3.0f, 4.0f}));
  Sgd sgd({x}, {.learning_rate = 1.0f});
  Backward(Sum(Mul(x, x)));  // grad = 2x = (6, 8), norm 10
  EXPECT_NEAR(sgd.GradNorm(), 10.0f, 1e-4);
  sgd.ZeroGrad();
  EXPECT_FLOAT_EQ(sgd.GradNorm(), 0.0f);
}

}  // namespace
}  // namespace lead::nn
